#ifndef MCFS_FLOW_COST_SCALING_H_
#define MCFS_FLOW_COST_SCALING_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "mcfs/common/status.h"
#include "mcfs/flow/matcher.h"
#include "mcfs/flow/transport.h"
#include "mcfs/graph/facility_stream.h"
#include "mcfs/graph/graph.h"

namespace mcfs {

// Goldberg–Tarjan cost-scaling min-cost flow on an explicit residual
// arc list, in the style of Flowlessly's refine/discharge loop
// (SNIPPETS.md snippet 3): e-scaling with push-lookahead (speculative
// relabel of the head before committing a push), arc fixing (arcs whose
// reduced-cost magnitude proves their flow final are skipped in
// discharge scans), and periodic global price updates (a reverse
// Dijkstra from the deficits in e-quantized lengths).
//
// Costs are int64. For exact termination the caller must supply every
// arc cost as a multiple of (num_nodes + 1): the final refine runs at
// eps = 1, and 1-optimality with costs on that lattice implies an
// exactly optimal flow. Prices are guarded against int64 overflow; a
// Solve() that trips the guard returns false and the caller re-scales
// its costs down and retries (see CostScalingMatcher).
class CostScalingFlow {
 public:
  explicit CostScalingFlow(int num_nodes);

  int num_nodes() const { return num_nodes_; }

  // Adds arc tail->head (capacity >= 0) plus its paired residual
  // reverse. Returns an arc id for FlowOf/SetCost.
  int AddArc(int tail, int head, int capacity, int64_t cost);

  // Declares node supply (positive) or demand (negative). Must be set
  // before the first Solve; supplies must sum to zero.
  void SetSupply(int node, int64_t supply);

  // Re-prices an existing arc (both residual directions). Used between
  // extension rounds to retune the overflow-arc penalty as longer real
  // edges materialize.
  void SetCost(int arc, int64_t cost);

  // Runs the refine/discharge schedule until the flow is feasible and
  // exactly optimal for the current arc set. Incremental: a re-Solve
  // after AddArc/SetCost keeps the existing flow and prices and only
  // repairs what the edits broke. Returns false when the price guard
  // tripped (caller re-scales costs and rebuilds); flow state is
  // unspecified after a failed Solve.
  bool Solve();

  // Flow currently on arc `arc` (0..capacity).
  int FlowOf(int arc) const;
  // Node price (dual) after Solve.
  int64_t Price(int node) const;

  // True when every residual arc has reduced cost >= -eps. After the
  // final refine this holds at eps = 1, and with all costs on the
  // (num_nodes + 1) lattice that certifies exact optimality: any
  // improving residual cycle would cost <= -(num_nodes + 1), but
  // 1-optimality bounds every cycle at >= -num_nodes.
  bool VerifyEpsOptimality(int64_t eps) const;

  // --- instrumentation (deterministic: the solver is serial) ---
  int64_t num_refines() const { return num_refines_; }
  int64_t num_pushes() const { return num_pushes_; }
  int64_t num_relabels() const { return num_relabels_; }
  int64_t num_global_updates() const { return num_global_updates_; }
  int64_t num_arcs_fixed() const { return num_arcs_fixed_; }
  int64_t num_lookahead_cutoffs() const { return num_lookahead_cutoffs_; }

 private:
  struct Arc {
    int32_t head = 0;      // node this direction enters
    int32_t rev = 0;       // index of the paired arc in arcs_[head]
    int32_t residual = 0;  // remaining capacity of this direction
    // Discharge scans skip fixed arcs: |reduced cost| > 2*n*eps at
    // refine start proves the arc's flow is final for this and every
    // later (smaller) eps. Re-derived at each refine.
    bool fixed = false;
    int64_t cost = 0;      // forward: +c, paired reverse: -c
  };

  int64_t ReducedCost(int tail, const Arc& arc) const {
    return arc.cost + price_[tail] - price_[arc.head];
  }
  Arc& Partner(const Arc& arc) { return arcs_[arc.head][arc.rev]; }

  // One full refine pass: fix provably-final arcs (sound against the
  // entry_eps-optimality the flow enters with), saturate negative arcs,
  // then discharge all active nodes to eps-optimality. If skipping the
  // fixed arcs left any of them violating, unfixes everything and runs
  // a second pass so the eps-optimality certificate always holds on
  // every residual arc. Returns false on price-guard trip.
  bool Refine(int64_t eps, int64_t entry_eps);
  // The saturate/discharge core of one refine pass.
  bool RefineCore(int64_t eps);
  bool Discharge(int node, int64_t eps);
  // Push-lookahead: true when pushing into `head` makes sense (it holds
  // a deficit, has an admissible out-arc, or cannot relabel). Otherwise
  // speculatively relabels `head` — which raises the caller's reduced
  // cost by >= eps — and returns false so the caller re-evaluates.
  // Sets *guard_ok = false when the speculative relabel trips the guard.
  bool LookAhead(int head, int64_t eps, bool* guard_ok);
  // Relabels `node` (price decrease creating an admissible arc).
  // Returns false when the new price would breach the guard.
  bool Relabel(int node, int64_t eps);
  // Reverse multi-source Dijkstra from the deficits in eps-quantized
  // lengths; drops prices so excesses see admissible paths again.
  bool GlobalPriceUpdate(int64_t eps);
  void MarkFixedArcs(int64_t entry_eps);
  void ClearFixedArcs();
  // Largest eps-optimality violation (-reduced cost) over residual
  // arcs; 0 when already 0-optimal. Seeds the refine schedule.
  int64_t MaxViolation() const;

  void PushActive(int node) {
    if (!in_active_[node]) {
      in_active_[node] = true;
      active_.push_back(node);
    }
  }

  int num_nodes_;
  std::vector<std::vector<Arc>> arcs_;      // per-node adjacency
  std::vector<std::pair<int, int>> arc_of_id_;  // arc id -> (tail, index)
  std::vector<int64_t> price_;
  std::vector<int64_t> excess_;
  std::vector<int> cur_;                    // current-arc pointers
  std::vector<int> active_;                 // discharge worklist (LIFO)
  std::vector<uint8_t> in_active_;
  bool solved_once_ = false;

  int64_t num_refines_ = 0;
  int64_t num_pushes_ = 0;
  int64_t num_relabels_ = 0;
  int64_t num_global_updates_ = 0;
  int64_t num_arcs_fixed_ = 0;
  int64_t num_lookahead_cutoffs_ = 0;
  int64_t relabels_since_update_ = 0;
};

// Batch unit-demand assignment via cost scaling, the CostScalingMatcher
// behind MatcherBackendKind::kCostScaling (DESIGN.md §4.12). Consumes
// the same lazily-materialized G_b edges as the SSPA matcher through
// NearestFacilityStream: it solves on the materialized prefix, then
// uses the optimal prices to prove which undiscovered edges can be
// pruned (reduced cost of any edge at the customer's next stream
// distance already non-negative) and extends + re-refines until the
// matching is optimal for the full bipartite graph. Distances are
// scaled to the int64 cost lattice with a dynamic power-of-two scale;
// the committed objective is re-read from the true double weights.
class CostScalingMatcher {
 public:
  // Same contract as IncrementalMatcher's constructor: distinct
  // facility nodes, repeatable customer nodes, capacities >= 0.
  CostScalingMatcher(const Graph* graph, std::vector<NodeId> customer_nodes,
                     std::vector<NodeId> facility_nodes,
                     std::vector<int> capacities);
  ~CostScalingMatcher();

  // Solves the full assignment (one unit per customer). Returns false
  // when some customer could not be assigned (component capacity
  // short); those customers are simply absent from MatchedPairs().
  // `threads` parallelizes only the candidate-stream prefetch.
  bool MatchAll(int threads = 1);

  int num_customers() const { return m_; }
  int num_facilities() const { return l_; }

  std::vector<MatchedPair> MatchedPairs() const;
  double TotalCost() const;

  // The typed warm-seed refusal (kUnsupported): cost scaling has no
  // incremental resume — callers holding a WarmSeed must fall back to
  // a cold solve (the warm-seed compatibility matrix, DESIGN.md §4.12).
  static Status WarmSeedStatus();
  Status ResumeFrom(const WarmSeed& seed) const;

  // --- instrumentation ---
  int64_t num_edges_materialized() const { return num_edges_materialized_; }
  int64_t num_extension_rounds() const { return num_extension_rounds_; }
  int64_t num_rescales() const { return num_rescales_; }
  const CostScalingFlow* flow_for_testing() const { return flow_.get(); }

 private:
  struct GbEdge {
    int customer = -1;
    int facility = -1;
    double distance = 0.0;
    int arc_id = -1;  // arc id inside flow_, -1 before the build
  };

  NearestFacilityStream& StreamFor(int customer);
  size_t StreamReserveHint() const;
  // Pops every stream edge whose scaled cost could still be attractive
  // under the current prices; returns the number of new G_b edges.
  int64_t ExtendFromStreams();
  // (Re)builds flow_ from scratch at the current scale with all
  // materialized edges; keeps no prior prices (used after a rescale).
  void BuildFlow();
  int64_t ScaledCost(double distance) const;
  void ChooseScale();
  void RetuneOverflowCosts();

  const Graph* graph_;
  int m_;
  int l_;
  int num_flow_nodes_;  // m_ + l_ + 1 (sink)
  std::vector<NodeId> customer_nodes_;
  std::vector<NodeId> facility_nodes_;
  std::vector<int> capacities_;
  std::vector<int> facility_index_of_node_;
  std::vector<std::unique_ptr<NearestFacilityStream>> streams_;
  int64_t streams_created_ = 0;
  std::vector<GbEdge> edges_;
  std::vector<int> overflow_arc_of_customer_;
  std::vector<int64_t> edges_of_customer_;  // materialized count, hints

  std::unique_ptr<CostScalingFlow> flow_;
  int scale_shift_ = 0;        // S = 2^scale_shift_ (can be negative)
  int scale_shift_cap_ = 40;   // lowered 4 bits per price-guard trip
  double max_distance_ = 0.0;  // largest distance seen on any stream
  bool rescale_pending_ = false;
  bool solved_ = false;

  int64_t num_edges_materialized_ = 0;
  int64_t num_extension_rounds_ = 0;
  int64_t num_rescales_ = 0;
};

// Dense transportation counterpart of SolveDenseTransport
// (flow/transport.h) on the cost-scaling engine, for the exact solver's
// lower bounds: same inputs, same optimum, same infeasibility contract
// (nullopt when no full assignment exists; cost[i][j] == kInfDistance
// forbids the pair). Objective is exact for the int-scaled costs and
// within the documented m/S rounding band of the double optimum.
std::optional<TransportResult> SolveDenseTransportCostScaling(
    int m, int l, const std::vector<double>& cost,
    const std::vector<int>& capacities);

}  // namespace mcfs

#endif  // MCFS_FLOW_COST_SCALING_H_
