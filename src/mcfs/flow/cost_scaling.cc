#include "mcfs/flow/cost_scaling.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "mcfs/common/check.h"
#include "mcfs/common/dary_heap.h"
#include "mcfs/common/thread_pool.h"
#include "mcfs/obs/metrics.h"

namespace mcfs {

namespace {

// eps shrink factor between refine passes.
constexpr int64_t kAlpha = 8;
// |price| bound. A relabel or global update past this makes Solve()
// return false so the caller can coarsen its cost scale and rebuild.
constexpr int64_t kPriceGuard = int64_t{1} << 61;
// Global price update cadence, in relabels since the last update.
constexpr int64_t kGlobalUpdateMinInterval = 64;
// Scaled arc costs stay below 2^kCostBudgetBits so a reduced cost
// (cost plus two guarded prices) always fits int64.
constexpr int kCostBudgetBits = 59;
// Nearest facilities each customer materializes before the first solve.
constexpr int kInitialFanout = 4;
// Overflow penalty factor: Z = (max_c + 1) * min(m + 2, kOverflowChain)
// on the cost lattice. Caps the rewiring-chain length the penalty has
// to dominate, which in turn protects the precision of the scale.
constexpr int64_t kOverflowChain = 1024;
// Streams created serially before bulk creation, so the reserve-hint
// clamp (satellite 2) has a measured G_b density to work from.
constexpr int kPilotStreams = 32;

}  // namespace

// ---------------------------------------------------------------------------
// CostScalingFlow

CostScalingFlow::CostScalingFlow(int num_nodes)
    : num_nodes_(num_nodes),
      arcs_(num_nodes),
      price_(num_nodes, 0),
      excess_(num_nodes, 0),
      cur_(num_nodes, 0),
      in_active_(num_nodes, 0) {
  MCFS_CHECK_GT(num_nodes, 0);
}

int CostScalingFlow::AddArc(int tail, int head, int capacity, int64_t cost) {
  MCFS_DCHECK(tail >= 0 && tail < num_nodes_);
  MCFS_DCHECK(head >= 0 && head < num_nodes_);
  MCFS_CHECK_NE(tail, head);
  MCFS_CHECK_GE(capacity, 0);
  Arc fwd;
  fwd.head = head;
  fwd.rev = static_cast<int32_t>(arcs_[head].size());
  fwd.residual = capacity;
  fwd.cost = cost;
  Arc bwd;
  bwd.head = tail;
  bwd.rev = static_cast<int32_t>(arcs_[tail].size());
  bwd.residual = 0;
  bwd.cost = -cost;
  arcs_[tail].push_back(fwd);
  arcs_[head].push_back(bwd);
  arc_of_id_.emplace_back(tail, static_cast<int>(arcs_[tail].size()) - 1);
  return static_cast<int>(arc_of_id_.size()) - 1;
}

void CostScalingFlow::SetSupply(int node, int64_t supply) {
  MCFS_CHECK(!solved_once_) << "supplies are fixed after the first Solve";
  excess_[node] = supply;
}

void CostScalingFlow::SetCost(int arc, int64_t cost) {
  const auto& [tail, index] = arc_of_id_[arc];
  Arc& fwd = arcs_[tail][index];
  fwd.cost = cost;
  arcs_[fwd.head][fwd.rev].cost = -cost;
}

int CostScalingFlow::FlowOf(int arc) const {
  const auto& [tail, index] = arc_of_id_[arc];
  const Arc& fwd = arcs_[tail][index];
  // The reverse direction starts empty and holds exactly the pushed
  // units, so its residual *is* the forward flow.
  return arcs_[fwd.head][fwd.rev].residual;
}

int64_t CostScalingFlow::Price(int node) const { return price_[node]; }

bool CostScalingFlow::VerifyEpsOptimality(int64_t eps) const {
  for (int u = 0; u < num_nodes_; ++u) {
    for (const Arc& arc : arcs_[u]) {
      if (arc.residual <= 0) continue;
      if (arc.cost + price_[u] - price_[arc.head] < -eps) return false;
    }
  }
  return true;
}

int64_t CostScalingFlow::MaxViolation() const {
  int64_t worst = 0;
  for (int u = 0; u < num_nodes_; ++u) {
    for (const Arc& arc : arcs_[u]) {
      if (arc.residual <= 0) continue;
      worst = std::max(worst, -(arc.cost + price_[u] - price_[arc.head]));
    }
  }
  return worst;
}

void CostScalingFlow::MarkFixedArcs(int64_t entry_eps) {
  // Goldberg's arc fixing: with entry_eps-optimal prices — the
  // optimality level the flow *enters* this refine with, not the finer
  // eps it is being refined to — a direction whose reduced cost exceeds
  // 2*n*entry_eps carries its final flow, so discharge scans skip it.
  // The hugely-negative partner saturates right below and stays full.
  const __int128 threshold = static_cast<__int128>(2) * num_nodes_ *
                             static_cast<__int128>(entry_eps);
  for (int u = 0; u < num_nodes_; ++u) {
    for (Arc& arc : arcs_[u]) {
      const int64_t rc = arc.cost + price_[u] - price_[arc.head];
      const bool fixed = static_cast<__int128>(rc) > threshold;
      if (fixed && !arc.fixed) ++num_arcs_fixed_;
      arc.fixed = fixed;
    }
  }
}

bool CostScalingFlow::Relabel(int node, int64_t eps) {
  // Largest price that makes the argmax *usable* out-arc exactly
  // admissible. Fixed arcs are excluded: discharge refuses to push on
  // them, so letting one win the max would pin the price and stall the
  // node forever. (A fixed arc left violating by the resulting deeper
  // drops is caught by Refine's certificate check, which unfixes and
  // re-runs.) If every residual out-arc is fixed — the heuristic
  // over-committed — unfix this node's arcs and retry.
  int64_t best = std::numeric_limits<int64_t>::min();
  for (const Arc& arc : arcs_[node]) {
    if (arc.fixed || arc.residual <= 0) continue;
    best = std::max(best, price_[arc.head] - arc.cost);
  }
  if (best == std::numeric_limits<int64_t>::min()) {
    for (Arc& arc : arcs_[node]) {
      arc.fixed = false;
      if (arc.residual > 0) {
        best = std::max(best, price_[arc.head] - arc.cost);
      }
    }
    cur_[node] = 0;
  }
  MCFS_DCHECK(best != std::numeric_limits<int64_t>::min())
      << "relabel on a node with no residual out-arc";
  const int64_t new_price = best - eps;
  if (new_price <= -kPriceGuard) return false;
  price_[node] = new_price;
  cur_[node] = 0;
  ++num_relabels_;
  ++relabels_since_update_;
  return true;
}

bool CostScalingFlow::LookAhead(int head, int64_t eps, bool* guard_ok) {
  *guard_ok = true;
  if (excess_[head] < 0) return true;
  std::vector<Arc>& arcs = arcs_[head];
  for (int& a = cur_[head]; a < static_cast<int>(arcs.size()); ++a) {
    const Arc& arc = arcs[a];
    if (arc.fixed || arc.residual <= 0) continue;
    if (arc.cost + price_[head] - price_[arc.head] < 0) return true;
  }
  // `head` has no admissible way out. If it has any residual arc the
  // speculative relabel drops its price by >= eps, which raises the
  // caller's reduced cost by the same amount — often past zero, saving
  // the push/undo round trip. With no residual arc at all the bounce
  // through `head` is unavoidable; let the push proceed.
  bool has_residual = false;
  for (const Arc& arc : arcs) {
    if (arc.residual > 0) {
      has_residual = true;
      break;
    }
  }
  if (!has_residual) return true;
  if (!Relabel(head, eps)) *guard_ok = false;
  return false;
}

bool CostScalingFlow::Discharge(int node, int64_t eps) {
  while (excess_[node] > 0) {
    std::vector<Arc>& arcs = arcs_[node];
    if (cur_[node] >= static_cast<int>(arcs.size())) {
      // Out of candidates at the current price: relabel and rescan.
      if (!Relabel(node, eps)) return false;
      if (relabels_since_update_ >=
          std::max<int64_t>(kGlobalUpdateMinInterval, num_nodes_)) {
        if (!GlobalPriceUpdate(eps)) return false;
      }
      continue;
    }
    Arc& arc = arcs[cur_[node]];
    if (arc.fixed || arc.residual <= 0 ||
        arc.cost + price_[node] - price_[arc.head] >= 0) {
      ++cur_[node];
      continue;
    }
    bool guard_ok = true;
    if (!LookAhead(arc.head, eps, &guard_ok)) {
      if (!guard_ok) return false;
      ++num_lookahead_cutoffs_;
      continue;  // head got cheaper to leave; re-evaluate the same arc
    }
    const int64_t delta =
        std::min<int64_t>(excess_[node], static_cast<int64_t>(arc.residual));
    arc.residual -= static_cast<int32_t>(delta);
    Partner(arc).residual += static_cast<int32_t>(delta);
    excess_[node] -= delta;
    excess_[arc.head] += delta;
    ++num_pushes_;
    if (excess_[arc.head] > 0) PushActive(arc.head);
  }
  return true;
}

bool CostScalingFlow::GlobalPriceUpdate(int64_t eps) {
  relabels_since_update_ = 0;
  struct Entry {
    int64_t rank;
    int32_t node;
  };
  struct EntryLess {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.rank != b.rank) return a.rank < b.rank;
      return a.node < b.node;  // deterministic tie-break
    }
  };
  constexpr int64_t kUnreached = std::numeric_limits<int64_t>::max();
  std::vector<int64_t> rank(num_nodes_, kUnreached);
  DaryHeap<Entry, 4, EntryLess> heap;
  heap.reserve(static_cast<size_t>(num_nodes_));
  bool any_deficit = false;
  for (int u = 0; u < num_nodes_; ++u) {
    if (excess_[u] < 0) {
      rank[u] = 0;
      heap.push({0, u});
      any_deficit = true;
    }
  }
  if (!any_deficit) return true;
  ++num_global_updates_;
  // Reverse multi-source Dijkstra from the deficits in eps-quantized
  // lengths: traversing residual arc u->v backward costs
  // max(0, floor(rc/eps) + 1) eps-units. Dropping price[u] by
  // rank[u]*eps then keeps every residual arc at reduced cost >= -eps
  // while excesses regain admissible paths toward the deficits.
  int64_t max_settled = 0;
  while (!heap.empty()) {
    const Entry top = heap.top();
    heap.pop();
    const int v = top.node;
    if (top.rank != rank[v]) continue;  // stale entry
    max_settled = std::max(max_settled, top.rank);
    // Each entry v->u in v's list pairs with the forward arc u->v.
    for (const Arc& out : arcs_[v]) {
      const int u = out.head;
      const Arc& into = arcs_[u][out.rev];
      if (into.residual <= 0) continue;
      const int64_t rc = into.cost + price_[u] - price_[v];
      const int64_t len = rc >= 0 ? rc / eps + 1 : 0;
      const int64_t cand = rank[v] + len;
      if (cand < rank[u]) {
        rank[u] = cand;
        heap.push({cand, u});
      }
    }
  }
  // Unreached nodes that touch any residual arc sit one step past the
  // deepest settled rank: residual arcs into them only gain reduced
  // cost, and no residual arc leaves them toward a reached node (it
  // would have reached them). Fully isolated nodes keep their price.
  const int64_t unreached_rank = max_settled + 1;
  for (int u = 0; u < num_nodes_; ++u) {
    int64_t r = rank[u];
    if (r == kUnreached) {
      bool touched = false;
      for (const Arc& arc : arcs_[u]) {
        if (arc.residual > 0 || arcs_[arc.head][arc.rev].residual > 0) {
          touched = true;
          break;
        }
      }
      if (!touched) continue;
      r = unreached_rank;
    }
    if (r == 0) continue;
    const __int128 dropped = static_cast<__int128>(price_[u]) -
                             static_cast<__int128>(r) * eps;
    if (dropped <= -static_cast<__int128>(kPriceGuard)) return false;
    price_[u] = static_cast<int64_t>(dropped);
  }
  // Prices moved globally, which can re-open arcs behind the
  // current-arc pointers; rescans are the price of the update.
  std::fill(cur_.begin(), cur_.end(), 0);
  return true;
}

void CostScalingFlow::ClearFixedArcs() {
  for (int u = 0; u < num_nodes_; ++u) {
    for (Arc& arc : arcs_[u]) arc.fixed = false;
  }
}

bool CostScalingFlow::Refine(int64_t eps, int64_t entry_eps) {
  ++num_refines_;
  MarkFixedArcs(entry_eps);
  if (!RefineCore(eps)) return false;
  // Certificate check: discharge skipped the fixed arcs, so deep price
  // drops can leave one of them violating eps-optimality. The theorem
  // behind the fixing makes that rare; when it happens, drop the
  // heuristic and refine again so every residual arc ends >= -eps.
  if (MaxViolation() > eps) {
    ClearFixedArcs();
    if (!RefineCore(eps)) return false;
  }
  return true;
}

bool CostScalingFlow::RefineCore(int64_t eps) {
  // Saturate every residual arc with negative reduced cost: the flow
  // becomes 0-optimal w.r.t. admissibility at the cost of excesses.
  for (int u = 0; u < num_nodes_; ++u) {
    for (Arc& arc : arcs_[u]) {
      if (arc.residual > 0 && arc.cost + price_[u] - price_[arc.head] < 0) {
        const int32_t delta = arc.residual;
        arc.residual = 0;
        Partner(arc).residual += delta;
        excess_[u] -= delta;
        excess_[arc.head] += delta;
      }
    }
  }
  std::fill(cur_.begin(), cur_.end(), 0);
  std::fill(in_active_.begin(), in_active_.end(), uint8_t{0});
  active_.clear();
  for (int u = 0; u < num_nodes_; ++u) {
    if (excess_[u] > 0) PushActive(u);
  }
  if (active_.empty()) return true;
  if (!GlobalPriceUpdate(eps)) return false;
  while (!active_.empty()) {
    const int u = active_.back();
    active_.pop_back();
    in_active_[u] = 0;
    if (!Discharge(u, eps)) return false;
  }
  return true;
}

bool CostScalingFlow::Solve() {
  int64_t eps0 = 0;
  if (!solved_once_) {
    int64_t total_supply = 0;
    for (int u = 0; u < num_nodes_; ++u) total_supply += excess_[u];
    MCFS_CHECK_EQ(total_supply, 0) << "supplies must sum to zero";
    for (int u = 0; u < num_nodes_; ++u) {
      for (const Arc& arc : arcs_[u]) {
        eps0 = std::max(eps0, arc.cost >= 0 ? arc.cost : -arc.cost);
      }
    }
  } else {
    // Re-solve after AddArc/SetCost edits: restart the schedule at the
    // damage level instead of the full cost range.
    eps0 = MaxViolation();
  }
  // The flow entering refine(eps) is entry_eps-optimal: eps0 at the
  // start (fresh pseudoflows mark nothing there — the threshold sits
  // above every reduced cost), the previous eps after that.
  int64_t entry = std::max<int64_t>(1, eps0);
  int64_t eps = std::max<int64_t>(1, eps0);
  for (;;) {
    if (!Refine(eps, entry)) return false;
    if (eps == 1) break;
    entry = eps;
    eps = std::max<int64_t>(1, eps / kAlpha);
  }
  solved_once_ = true;
  MCFS_DCHECK(VerifyEpsOptimality(1));
  return true;
}

// ---------------------------------------------------------------------------
// CostScalingMatcher

CostScalingMatcher::CostScalingMatcher(const Graph* graph,
                                       std::vector<NodeId> customer_nodes,
                                       std::vector<NodeId> facility_nodes,
                                       std::vector<int> capacities)
    : graph_(graph),
      m_(static_cast<int>(customer_nodes.size())),
      l_(static_cast<int>(facility_nodes.size())),
      num_flow_nodes_(m_ + l_ + 1),
      customer_nodes_(std::move(customer_nodes)),
      facility_nodes_(std::move(facility_nodes)),
      capacities_(std::move(capacities)) {
  MCFS_CHECK_EQ(capacities_.size(), facility_nodes_.size());
  facility_index_of_node_.assign(graph_->NumNodes(), -1);
  for (int j = 0; j < l_; ++j) {
    const NodeId node = facility_nodes_[j];
    MCFS_CHECK(node >= 0 && node < graph_->NumNodes());
    MCFS_CHECK_EQ(facility_index_of_node_[node], -1)
        << "two candidate facilities on node " << node;
    facility_index_of_node_[node] = j;
    MCFS_CHECK_GE(capacities_[j], 0);
  }
  streams_.resize(m_);
  edges_of_customer_.assign(m_, 0);
  overflow_arc_of_customer_.assign(m_, -1);
}

CostScalingMatcher::~CostScalingMatcher() = default;

size_t CostScalingMatcher::StreamReserveHint() const {
  const size_t nodes = static_cast<size_t>(graph_->NumNodes());
  // Shape-derived base hint, same formula as the SSPA matcher's.
  size_t hint = std::min<size_t>(
      nodes,
      8 + 4 * nodes / static_cast<size_t>(std::max(1, l_)));
  // Clamp up to the measured G_b density (satellite 2): the batch
  // waves here materialize several candidates per customer right away,
  // and a zero-density hint makes every stream's FlatMap start at the
  // minimum table and grow during the first discharge wave. Streams
  // created after the pilot wave size off what was actually discovered.
  if (streams_created_ > 0 && num_edges_materialized_ > 0) {
    const size_t per_customer = static_cast<size_t>(
        num_edges_materialized_ / streams_created_ + 1);
    const size_t nodes_per_facility =
        std::max<size_t>(1, nodes / static_cast<size_t>(std::max(1, l_)));
    hint = std::max(hint,
                    std::min(nodes, 8 + per_customer * nodes_per_facility));
  }
  return hint;
}

NearestFacilityStream& CostScalingMatcher::StreamFor(int customer) {
  if (streams_[customer] == nullptr) {
    streams_[customer] = std::make_unique<NearestFacilityStream>(
        graph_, customer_nodes_[customer], &facility_index_of_node_,
        StreamReserveHint());
    ++streams_created_;
  }
  return *streams_[customer];
}

int64_t CostScalingMatcher::ScaledCost(double distance) const {
  return std::llround(std::ldexp(distance, scale_shift_));
}

namespace {

// Largest scaled unit cost that keeps the retuned overflow penalty
// (max_c + 1) * chain * alpha inside the cost budget.
int64_t CostBudgetInt(int64_t alpha, int64_t chain) {
  return static_cast<int64_t>(
             std::ldexp(1.0, kCostBudgetBits) /
             (static_cast<double>(alpha) * static_cast<double>(chain))) -
         1;
}

}  // namespace

void CostScalingMatcher::ChooseScale() {
  const int64_t alpha = num_flow_nodes_ + 1;
  const int64_t chain = std::min<int64_t>(m_ + 2, kOverflowChain);
  const double budget = static_cast<double>(CostBudgetInt(alpha, chain));
  const double maxd = std::max(max_distance_, 1e-30);
  int shift = scale_shift_cap_;
  while (shift > -16 && std::ldexp(maxd, shift) > budget) --shift;
  scale_shift_ = shift;
}

void CostScalingMatcher::BuildFlow() {
  const int sink = m_ + l_;
  const int64_t alpha = num_flow_nodes_ + 1;
  flow_ = std::make_unique<CostScalingFlow>(num_flow_nodes_);
  for (int i = 0; i < m_; ++i) flow_->SetSupply(i, 1);
  flow_->SetSupply(sink, -static_cast<int64_t>(m_));
  for (int j = 0; j < l_; ++j) {
    flow_->AddArc(m_ + j, sink, capacities_[j], 0);
  }
  for (GbEdge& edge : edges_) {
    edge.arc_id = flow_->AddArc(edge.customer, m_ + edge.facility, 1,
                                ScaledCost(edge.distance) * alpha);
  }
  // Per-customer overflow arcs: a penalty big enough that the optimum
  // only uses one when the customer genuinely cannot be assigned, and
  // they guarantee every refine pass can route all excess.
  for (int i = 0; i < m_; ++i) {
    overflow_arc_of_customer_[i] = flow_->AddArc(i, sink, 1, 0);
  }
  RetuneOverflowCosts();
}

void CostScalingMatcher::RetuneOverflowCosts() {
  const int64_t alpha = num_flow_nodes_ + 1;
  const int64_t chain = std::min<int64_t>(m_ + 2, kOverflowChain);
  int64_t max_c = 0;
  for (const GbEdge& edge : edges_) {
    max_c = std::max(max_c, ScaledCost(edge.distance));
  }
  const int64_t z = (max_c + 1) * chain * alpha;
  for (int i = 0; i < m_; ++i) {
    flow_->SetCost(overflow_arc_of_customer_[i], z);
  }
}

int64_t CostScalingMatcher::ExtendFromStreams() {
  const int64_t alpha = num_flow_nodes_ + 1;
  const int64_t chain = std::min<int64_t>(m_ + 2, kOverflowChain);
  const int64_t budget_int = CostBudgetInt(alpha, chain);
  // With 1-optimal prices from the last Solve, an unmaterialized edge
  // (i, j) can only improve the flow when its reduced cost is negative:
  // any improving cycle through it uses at most n materialized arcs of
  // reduced cost >= -1 each, and all costs sit on the alpha = (n+1)
  // lattice, so a cycle needs the new arc below 0 to reach <= -alpha.
  // Facility prices are bounded by maxpi over capacity-carrying
  // facilities (a zero-capacity facility can never carry flow), and
  // stream distances only grow — one peek per customer prunes the tail.
  int64_t maxpi = std::numeric_limits<int64_t>::min();
  for (int j = 0; j < l_; ++j) {
    if (capacities_[j] > 0) maxpi = std::max(maxpi, flow_->Price(m_ + j));
  }
  if (maxpi == std::numeric_limits<int64_t>::min()) return 0;
  int64_t added = 0;
  for (int i = 0; i < m_; ++i) {
    const int64_t pi = flow_->Price(i);
    for (;;) {
      const double d = StreamFor(i).PeekDistance();
      if (d == kInfDistance) break;
      const int64_t c_int = ScaledCost(d);
      if (c_int > budget_int) {
        // The next edge overflows the cost budget at this scale.
        max_distance_ = std::max(max_distance_, d);
        rescale_pending_ = true;
        return added;
      }
      if (c_int * alpha + pi - maxpi >= 0) break;
      std::optional<FacilityAtDistance> next = streams_[i]->Pop();
      MCFS_DCHECK(next.has_value());
      max_distance_ = std::max(max_distance_, next->distance);
      GbEdge edge;
      edge.customer = i;
      edge.facility = next->facility;
      edge.distance = next->distance;
      edge.arc_id = flow_->AddArc(i, m_ + next->facility, 1,
                                  ScaledCost(next->distance) * alpha);
      edges_.push_back(edge);
      ++edges_of_customer_[i];
      ++num_edges_materialized_;
      ++added;
    }
  }
  return added;
}

bool CostScalingMatcher::MatchAll(int threads) {
  MCFS_CHECK(!solved_) << "MatchAll is one-shot";
  solved_ = true;
  const int fanout = std::min(l_, kInitialFanout);
  auto pop_initial = [&](int customer) {
    NearestFacilityStream& stream = StreamFor(customer);
    for (int t = 0; t < fanout; ++t) {
      std::optional<FacilityAtDistance> next = stream.Pop();
      if (!next.has_value()) break;
      max_distance_ = std::max(max_distance_, next->distance);
      edges_.push_back(GbEdge{customer, next->facility, next->distance, -1});
      ++edges_of_customer_[customer];
      ++num_edges_materialized_;
    }
  };
  // Pilot wave: serial creation + pops so StreamReserveHint() has a
  // measured density before the bulk of the streams get built.
  const int pilot = std::min(m_, kPilotStreams);
  for (int i = 0; i < pilot; ++i) pop_initial(i);
  for (int i = pilot; i < m_; ++i) StreamFor(i);
  if (ResolveThreadCount(threads) > 1 && fanout > 0 && pilot < m_) {
    // Prefetch never changes what Pop() returns, so the result stays
    // identical for every thread count.
    ParallelFor(
        pilot, m_, /*grain=*/1,
        [&](int64_t i) { streams_[i]->Prefetch(fanout); }, threads);
  }
  for (int i = pilot; i < m_; ++i) pop_initial(i);

  ChooseScale();
  BuildFlow();
  for (;;) {
    RetuneOverflowCosts();
    if (!flow_->Solve()) {
      // Price guard tripped: coarsen the scale and restart cold.
      ++num_rescales_;
      scale_shift_cap_ = scale_shift_ - 4;
      MCFS_CHECK_GE(scale_shift_cap_, -16) << "cost scale collapsed";
      ChooseScale();
      BuildFlow();
      continue;
    }
    rescale_pending_ = false;
    const int64_t added = ExtendFromStreams();
    if (rescale_pending_) {
      ++num_rescales_;
      ChooseScale();
      BuildFlow();
      continue;
    }
    if (added == 0) break;
    ++num_extension_rounds_;
  }

  MCFS_COUNT("cost_scaling/edges_materialized", num_edges_materialized_);
  MCFS_COUNT("cost_scaling/extension_rounds", num_extension_rounds_);
  MCFS_COUNT("cost_scaling/rescales", num_rescales_);
  MCFS_COUNT("cost_scaling/refines", flow_->num_refines());
  MCFS_COUNT("cost_scaling/pushes", flow_->num_pushes());
  MCFS_COUNT("cost_scaling/relabels", flow_->num_relabels());
  MCFS_COUNT("cost_scaling/global_updates", flow_->num_global_updates());
  MCFS_COUNT("cost_scaling/arcs_fixed", flow_->num_arcs_fixed());
  MCFS_COUNT("cost_scaling/lookahead_cutoffs",
             flow_->num_lookahead_cutoffs());

  for (int i = 0; i < m_; ++i) {
    if (flow_->FlowOf(overflow_arc_of_customer_[i]) > 0) return false;
  }
  return true;
}

std::vector<MatchedPair> CostScalingMatcher::MatchedPairs() const {
  std::vector<MatchedPair> pairs;
  if (flow_ == nullptr) return pairs;
  pairs.reserve(static_cast<size_t>(m_));
  for (const GbEdge& edge : edges_) {
    if (edge.arc_id >= 0 && flow_->FlowOf(edge.arc_id) > 0) {
      pairs.push_back({edge.customer, edge.facility, edge.distance});
    }
  }
  return pairs;
}

double CostScalingMatcher::TotalCost() const {
  if (flow_ == nullptr) return 0.0;
  double total = 0.0;
  for (const GbEdge& edge : edges_) {
    if (edge.arc_id >= 0 && flow_->FlowOf(edge.arc_id) > 0) {
      total += edge.distance;
    }
  }
  return total;
}

Status CostScalingMatcher::WarmSeedStatus() {
  return UnsupportedError(
      "cost_scaling matcher cannot resume a warm seed: e-scaling keeps no "
      "augmenting-path state to adopt; fall back to a cold solve");
}

Status CostScalingMatcher::ResumeFrom(const WarmSeed& seed) const {
  (void)seed;
  return WarmSeedStatus();
}

// ---------------------------------------------------------------------------
// Dense transportation oracle

std::optional<TransportResult> SolveDenseTransportCostScaling(
    int m, int l, const std::vector<double>& cost,
    const std::vector<int>& capacities) {
  MCFS_CHECK_EQ(cost.size(), static_cast<size_t>(m) * static_cast<size_t>(l));
  MCFS_CHECK_EQ(capacities.size(), static_cast<size_t>(l));
  TransportResult result;
  result.cost = 0.0;
  result.assignment.assign(m, -1);
  if (m == 0) return result;
  const int num_nodes = m + l + 1;
  const int sink = m + l;
  const int64_t alpha = num_nodes + 1;
  const int64_t chain = std::min<int64_t>(m + 2, kOverflowChain);
  const int64_t budget_int = CostBudgetInt(alpha, chain);
  double maxd = 0.0;
  for (double c : cost) {
    if (c == kInfDistance) continue;
    MCFS_CHECK_GE(c, 0.0);
    maxd = std::max(maxd, c);
  }
  int shift = 40;
  while (shift > -16 &&
         std::ldexp(std::max(maxd, 1e-30), shift) >
             static_cast<double>(budget_int)) {
    --shift;
  }
  for (;;) {
    CostScalingFlow flow(num_nodes);
    for (int i = 0; i < m; ++i) flow.SetSupply(i, 1);
    flow.SetSupply(sink, -static_cast<int64_t>(m));
    for (int j = 0; j < l; ++j) flow.AddArc(m + j, sink, capacities[j], 0);
    std::vector<int> arc_of_pair(static_cast<size_t>(m) * l, -1);
    int64_t max_c = 0;
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < l; ++j) {
        const double c = cost[static_cast<size_t>(i) * l + j];
        if (c == kInfDistance) continue;
        const int64_t c_int = std::llround(std::ldexp(c, shift));
        max_c = std::max(max_c, c_int);
        arc_of_pair[static_cast<size_t>(i) * l + j] =
            flow.AddArc(i, m + j, 1, c_int * alpha);
      }
    }
    std::vector<int> overflow(m);
    const int64_t z = (max_c + 1) * chain * alpha;
    for (int i = 0; i < m; ++i) overflow[i] = flow.AddArc(i, sink, 1, z);
    if (!flow.Solve()) {
      shift -= 4;
      MCFS_CHECK_GE(shift, -16) << "cost scale collapsed";
      continue;
    }
    for (int i = 0; i < m; ++i) {
      if (flow.FlowOf(overflow[i]) > 0) return std::nullopt;
      for (int j = 0; j < l; ++j) {
        const int arc = arc_of_pair[static_cast<size_t>(i) * l + j];
        if (arc >= 0 && flow.FlowOf(arc) > 0) {
          result.assignment[i] = j;
          result.cost += cost[static_cast<size_t>(i) * l + j];
          break;
        }
      }
      MCFS_CHECK_GE(result.assignment[i], 0);
    }
    return result;
  }
}

}  // namespace mcfs
