#include "mcfs/flow/matcher_backend.h"

#include <cstdlib>

#include "mcfs/common/check.h"
#include "mcfs/common/thread_pool.h"
#include "mcfs/flow/cost_scaling.h"

namespace mcfs {
namespace {

// Crossover thresholds of the `auto` model, fitted on the committed
// BENCH_matcher_backends.json sweep (see DESIGN.md §4.12): e-scaling
// overtakes SSPA only once the matching is *near-saturated* — with
// occupancy at ~1.0 every late customer rewires a long augmenting
// chain, so SSPA pays repeated label-correcting passes while the
// refine/discharge waves amortize that work across the whole batch.
// Below ~0.96 occupancy SSPA's first candidates mostly stick and its
// lazy per-customer searches touch a fraction of the arcs a global
// refine pass must scan (measured 4-8x faster on the sparse preset).
// The batch must also be wide enough (customers, facilities) that the
// scaling engine's fixed per-refine costs amortize; the sweep's
// "crossover" cells (m~560-620, l~35-40, occ 0.97-1.0) are the
// boundary, where cost scaling wins by only ~1.2-1.5x.
constexpr int64_t kAutoMinFacilities = 32;
constexpr int64_t kAutoMinCustomers = 512;
constexpr double kAutoMinOccupancy = 0.96;

class SspaBackend : public MatcherBackend {
 public:
  MatcherBackendKind kind() const override {
    return MatcherBackendKind::kSspa;
  }

  BatchMatchResult Match(const Graph* graph,
                         const std::vector<NodeId>& customer_nodes,
                         const std::vector<NodeId>& facility_nodes,
                         const std::vector<int>& capacities,
                         int threads) override {
    // Mirrors core/instance.cc AssignWithMatcher on a fresh matcher
    // step for step, so routing AssignOptimally through the registry
    // stays bit-identical to the pre-registry code path.
    IncrementalMatcher matcher(graph, customer_nodes, facility_nodes,
                               capacities);
    const int m = matcher.num_customers();
    if (ResolveThreadCount(threads) > 1) {
      std::vector<int> counts(m, 2);
      matcher.PrefetchCandidates(counts, threads);
    }
    BatchMatchResult result;
    result.all_assigned = true;
    for (int i = 0; i < m; ++i) {
      if (!matcher.FindPair(i)) result.all_assigned = false;
    }
    result.pairs = matcher.MatchedPairs();
    result.total_cost = matcher.TotalCost();
    return result;
  }

  Status AcceptsWarmSeed() const override { return OkStatus(); }
};

class CostScalingBackend : public MatcherBackend {
 public:
  MatcherBackendKind kind() const override {
    return MatcherBackendKind::kCostScaling;
  }

  BatchMatchResult Match(const Graph* graph,
                         const std::vector<NodeId>& customer_nodes,
                         const std::vector<NodeId>& facility_nodes,
                         const std::vector<int>& capacities,
                         int threads) override {
    CostScalingMatcher matcher(graph, customer_nodes, facility_nodes,
                               capacities);
    BatchMatchResult result;
    result.all_assigned = matcher.MatchAll(threads);
    result.pairs = matcher.MatchedPairs();
    result.total_cost = matcher.TotalCost();
    return result;
  }

  Status AcceptsWarmSeed() const override {
    return CostScalingMatcher::WarmSeedStatus();
  }
};

}  // namespace

const char* MatcherBackendName(MatcherBackendKind kind) {
  switch (kind) {
    case MatcherBackendKind::kSspa:
      return "sspa";
    case MatcherBackendKind::kCostScaling:
      return "cost_scaling";
    case MatcherBackendKind::kAuto:
      return "auto";
  }
  return "unknown";
}

StatusOr<MatcherBackendKind> ParseMatcherBackend(const std::string& name) {
  std::string normalized = name;
  for (char& c : normalized) {
    if (c == '-') c = '_';
  }
  if (normalized == "sspa") return MatcherBackendKind::kSspa;
  if (normalized == "cost_scaling") return MatcherBackendKind::kCostScaling;
  if (normalized == "auto") return MatcherBackendKind::kAuto;
  return InvalidInputError("unknown matcher backend \"" + name +
                           "\" (expected sspa | cost_scaling | auto)");
}

MatcherBackendKind MatcherBackendFromEnv(MatcherBackendKind fallback) {
  const char* env = std::getenv("MCFS_MATCHER");
  if (env == nullptr || env[0] == '\0') return fallback;
  StatusOr<MatcherBackendKind> parsed = ParseMatcherBackend(env);
  MCFS_CHECK(parsed.ok()) << "MCFS_MATCHER: " << parsed.status().ToString();
  return *parsed;
}

MatcherBackendKind ResolveMatcherBackend(MatcherBackendKind requested,
                                         const MatchShape& shape) {
  if (requested != MatcherBackendKind::kAuto) return requested;
  // Warm shapes stay on SSPA regardless of size: cost scaling refuses
  // exported seeds, and a cold re-solve would forfeit more than the
  // refine passes recover.
  if (shape.warm) return MatcherBackendKind::kSspa;
  if (shape.facilities >= kAutoMinFacilities &&
      shape.customers >= kAutoMinCustomers &&
      shape.Occupancy() >= kAutoMinOccupancy) {
    return MatcherBackendKind::kCostScaling;
  }
  return MatcherBackendKind::kSspa;
}

std::unique_ptr<MatcherBackend> MakeMatcherBackend(MatcherBackendKind kind) {
  switch (kind) {
    case MatcherBackendKind::kSspa:
      return std::make_unique<SspaBackend>();
    case MatcherBackendKind::kCostScaling:
      return std::make_unique<CostScalingBackend>();
    case MatcherBackendKind::kAuto:
      break;
  }
  MCFS_CHECK(false) << "MakeMatcherBackend: kAuto must be resolved with "
                       "ResolveMatcherBackend before construction";
  return nullptr;
}

}  // namespace mcfs
