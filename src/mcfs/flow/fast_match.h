#ifndef MCFS_FLOW_FAST_MATCH_H_
#define MCFS_FLOW_FAST_MATCH_H_

#include <vector>

#include "mcfs/graph/graph.h"

namespace mcfs {

// Bounded-work capacitated greedy matching (DESIGN.md §4.14): the
// instant-responder assignment behind the serving fast tier. Instead of
// the optimal min-cost matching (flow/matcher.h, flow/cost_scaling.h),
// customers are assigned nearest-first against precomputed multi-source
// distances — the O(M log M) roadmap-matching flavor of Treleaven et
// al. (arXiv 1311.4609):
//
//   round r: one MultiSourceDijkstra from the selected facilities that
//   still have free capacity; unassigned customers are visited in
//   ascending nearest-distance order (ties by customer index) and take
//   their nearest unsaturated facility while its capacity lasts.
//
// Customers that lose the race for a saturated facility roll into the
// next round, where the saturated facility is no longer a source. Work
// is bounded: each round either assigns every remaining reachable
// customer or saturates at least one facility, so at most
// |selected| + 1 rounds run (callers can tighten that with
// FastMatchOptions::max_rounds). The result is feasible
// (capacity-respecting) but deliberately not optimal — the full solver
// refines it in the background.
struct FastMatchOptions {
  // Upper bound on restricted re-match rounds; <= 0 derives the
  // |selected| + 1 bound above.
  int max_rounds = 0;
};

struct FastMatchResult {
  // Every customer holds an assignment. False when some customer is
  // unreachable from (or crowded out of) the selected capacity within
  // the round budget — the caller falls back to the exact matcher.
  bool all_assigned = false;
  std::vector<int> assignment;    // size m; facility index or -1
  std::vector<double> distances;  // size m; network distance, 0 if unassigned
  double total_cost = 0.0;        // sum of assigned distances
  int rounds = 0;                 // multi-source rounds actually run
};

// Greedily assigns every customer to the facilities named by `selected`
// (indices into `facility_nodes` / `capacities`, distinct).
// Deterministic: depends only on the input bytes and the selection
// order. The flow layer stays instance-free (core depends on flow, not
// the other way around), so callers pass the pieces directly.
FastMatchResult FastGreedyMatch(const Graph& graph,
                                const std::vector<NodeId>& customers,
                                const std::vector<NodeId>& facility_nodes,
                                const std::vector<int>& capacities,
                                const std::vector<int>& selected,
                                const FastMatchOptions& options = {});

}  // namespace mcfs

#endif  // MCFS_FLOW_FAST_MATCH_H_
