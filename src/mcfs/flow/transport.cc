#include "mcfs/flow/transport.h"

#include <algorithm>

#include "mcfs/common/check.h"

namespace mcfs {

std::optional<TransportResult> SolveDenseTransport(
    int m, int l, const std::vector<double>& cost,
    const std::vector<int>& capacities) {
  MCFS_CHECK_EQ(cost.size(), static_cast<size_t>(m) * l);
  MCFS_CHECK_EQ(capacities.size(), static_cast<size_t>(l));
  const int total = m + l;
  std::vector<double> potential(total, 0.0);
  std::vector<int> assignment(m, -1);
  std::vector<int> assigned_count(l, 0);
  std::vector<std::vector<int>> matched(l);  // customers per facility

  std::vector<double> dist(total);
  std::vector<int> parent(total);
  std::vector<uint8_t> done(total);

  for (int source = 0; source < m; ++source) {
    std::fill(dist.begin(), dist.end(), kInfDistance);
    std::fill(parent.begin(), parent.end(), -1);
    std::fill(done.begin(), done.end(), 0);
    dist[source] = 0.0;
    int sink = -1;
    while (true) {
      // Dense Dijkstra step: pick the closest unfinished node.
      int best = -1;
      double best_dist = kInfDistance;
      for (int v = 0; v < total; ++v) {
        if (!done[v] && dist[v] < best_dist) {
          best = v;
          best_dist = dist[v];
        }
      }
      if (best == -1) break;
      done[best] = 1;
      if (best >= m && assigned_count[best - m] < capacities[best - m]) {
        sink = best - m;
        break;
      }
      if (best < m) {
        const int i = best;
        for (int j = 0; j < l; ++j) {
          if (done[m + j]) continue;
          if (assignment[i] == j) continue;  // matched edge is reversed
          const double c = cost[static_cast<size_t>(i) * l + j];
          if (c == kInfDistance) continue;
          const double reduced = c - potential[i] + potential[m + j];
          if (best_dist + reduced < dist[m + j]) {
            dist[m + j] = best_dist + reduced;
            parent[m + j] = i;
          }
        }
      } else {
        const int j = best - m;
        for (const int i : matched[j]) {
          if (done[i]) continue;
          const double c = cost[static_cast<size_t>(i) * l + j];
          const double reduced = -c - potential[m + j] + potential[i];
          if (best_dist + reduced < dist[i]) {
            dist[i] = best_dist + reduced;
            parent[i] = m + j;
          }
        }
      }
    }
    if (sink == -1) return std::nullopt;  // customer cannot be assigned
    // Augment along the parent chain.
    int current = m + sink;
    while (current != source) {
      const int prev = parent[current];
      if (current >= m) {
        const int j = current - m;
        assignment[prev] = j;
        matched[j].push_back(prev);
      } else {
        const int j = prev - m;
        auto& list = matched[j];
        list.erase(std::find(list.begin(), list.end(), current));
        // assignment[current] will be overwritten by the next hop.
      }
      current = prev;
    }
    assigned_count[sink]++;
    // Potential update (capped at the sink distance).
    const double sink_dist = dist[m + sink];
    for (int v = 0; v < total; ++v) {
      if (dist[v] <= sink_dist) potential[v] += sink_dist - dist[v];
    }
  }

  TransportResult result;
  result.assignment = assignment;
  for (int i = 0; i < m; ++i) {
    result.cost += cost[static_cast<size_t>(i) * l + assignment[i]];
  }
  return result;
}

namespace {

void BruteForceRecurse(int customer, int m, int l,
                       const std::vector<double>& cost,
                       std::vector<int>& remaining, double running,
                       std::vector<int>& current, double& best_cost,
                       std::vector<int>& best_assignment) {
  if (running >= best_cost) return;
  if (customer == m) {
    best_cost = running;
    best_assignment = current;
    return;
  }
  for (int j = 0; j < l; ++j) {
    const double c = cost[static_cast<size_t>(customer) * l + j];
    if (remaining[j] == 0 || c == kInfDistance) continue;
    remaining[j]--;
    current[customer] = j;
    BruteForceRecurse(customer + 1, m, l, cost, remaining, running + c,
                      current, best_cost, best_assignment);
    remaining[j]++;
  }
}

}  // namespace

std::optional<TransportResult> BruteForceTransport(
    int m, int l, const std::vector<double>& cost,
    const std::vector<int>& capacities) {
  std::vector<int> remaining = capacities;
  std::vector<int> current(m, -1);
  std::vector<int> best_assignment;
  double best_cost = kInfDistance;
  BruteForceRecurse(0, m, l, cost, remaining, 0.0, current, best_cost,
                    best_assignment);
  if (best_assignment.empty()) return std::nullopt;
  return TransportResult{best_cost, best_assignment};
}

}  // namespace mcfs
