#ifndef MCFS_FLOW_TRANSPORT_H_
#define MCFS_FLOW_TRANSPORT_H_

#include <optional>
#include <vector>

#include "mcfs/graph/dijkstra.h"

namespace mcfs {

// Result of a transportation solve: per-customer facility index and the
// total cost.
struct TransportResult {
  double cost = 0.0;
  std::vector<int> assignment;  // size m; facility index per customer
};

// Exact minimum-cost transportation on a dense cost matrix: m unit-demand
// customers, l facilities with integer capacities. cost[i*l + j] is the
// cost of assigning customer i to facility j; kInfDistance forbids the
// pair. Returns nullopt when not all customers can be assigned.
//
// Classic successive-shortest-path with potentials; O(m * (m+l)^2).
// Used as (a) the optimality oracle for IncrementalMatcher in tests and
// (b) the relaxation bound inside the exact branch-and-bound solver.
std::optional<TransportResult> SolveDenseTransport(
    int m, int l, const std::vector<double>& cost,
    const std::vector<int>& capacities);

// Exponential-time exhaustive search over all feasible assignments.
// Only for tiny test instances (m <= ~8).
std::optional<TransportResult> BruteForceTransport(
    int m, int l, const std::vector<double>& cost,
    const std::vector<int>& capacities);

}  // namespace mcfs

#endif  // MCFS_FLOW_TRANSPORT_H_
