#include "mcfs/flow/fast_match.h"

#include <algorithm>
#include <cmath>

#include "mcfs/graph/dijkstra.h"
#include "mcfs/obs/metrics.h"
#include "mcfs/obs/trace.h"

namespace mcfs {

FastMatchResult FastGreedyMatch(const Graph& graph,
                                const std::vector<NodeId>& customers,
                                const std::vector<NodeId>& facility_nodes,
                                const std::vector<int>& capacities,
                                const std::vector<int>& selected,
                                const FastMatchOptions& options) {
  MCFS_SPAN("fast_match/run");
  const int m = static_cast<int>(customers.size());
  FastMatchResult result;
  result.assignment.assign(m, -1);
  result.distances.assign(m, 0.0);
  if (m == 0) {
    result.all_assigned = true;
    return result;
  }
  if (selected.empty()) return result;

  std::vector<int> remaining(selected.size());
  for (size_t s = 0; s < selected.size(); ++s) {
    remaining[s] = capacities[selected[s]];
  }

  std::vector<int> unassigned(m);
  for (int i = 0; i < m; ++i) unassigned[i] = i;

  const int max_rounds = options.max_rounds > 0
                             ? options.max_rounds
                             : static_cast<int>(selected.size()) + 1;
  for (int round = 0; round < max_rounds && !unassigned.empty(); ++round) {
    // Sources: the selected facilities that still have free capacity.
    std::vector<NodeId> sources;
    std::vector<int> source_slot;  // index into `selected` per source
    sources.reserve(selected.size());
    for (size_t s = 0; s < selected.size(); ++s) {
      if (remaining[s] > 0) {
        sources.push_back(facility_nodes[selected[s]]);
        source_slot.push_back(static_cast<int>(s));
      }
    }
    if (sources.empty()) break;
    const MultiSourceResult nearest = MultiSourceDijkstra(graph, sources);

    // Nearest-first, ties by customer index: one sort per round is the
    // O(M log M) piece; everything else is linear. Unreachable
    // customers stay unassigned — sources only shrink across rounds, so
    // they can never become reachable later.
    struct Ranked {
      double distance;
      int customer;
    };
    std::vector<Ranked> order;
    order.reserve(unassigned.size());
    for (const int i : unassigned) {
      const double d = nearest.distance[customers[i]];
      if (std::isfinite(d)) order.push_back({d, i});
    }
    if (order.empty()) break;
    result.rounds = round + 1;
    std::sort(order.begin(), order.end(),
              [](const Ranked& a, const Ranked& b) {
                if (a.distance != b.distance) return a.distance < b.distance;
                return a.customer < b.customer;
              });

    // The first ranked customer always lands (its nearest source has
    // capacity by construction), so every round makes progress.
    for (const Ranked& r : order) {
      const int slot = source_slot[nearest.nearest_index[customers[r.customer]]];
      if (remaining[slot] > 0) {
        remaining[slot]--;
        result.assignment[r.customer] = selected[slot];
        result.distances[r.customer] = r.distance;
        result.total_cost += r.distance;
      }
    }
    std::vector<int> next_unassigned;
    next_unassigned.reserve(unassigned.size());
    for (const int i : unassigned) {
      if (result.assignment[i] < 0) next_unassigned.push_back(i);
    }
    unassigned = std::move(next_unassigned);
  }
  result.all_assigned = unassigned.empty();
  MCFS_COUNT("fast_match/rounds", result.rounds);
  return result;
}

}  // namespace mcfs
