#ifndef MCFS_FLOW_MATCHER_BACKEND_H_
#define MCFS_FLOW_MATCHER_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mcfs/common/status.h"
#include "mcfs/flow/matcher.h"
#include "mcfs/graph/graph.h"

namespace mcfs {

// Which min-cost matching engine solves a batch assignment (DESIGN.md
// §4.12). The SSPA matcher stays the only engine for the incremental
// one-unit-at-a-time workloads (WMA's demand-growth loop, warm-seed
// resume); backend selection applies to the *batch* assignments: the
// final matching after selection, the baselines' finishing step, and
// the exact solver's dense transportation bounds.
enum class MatcherBackendKind {
  kSspa = 0,         // successive shortest paths (flow/matcher.h)
  kCostScaling = 1,  // e-scaling refine/discharge (flow/cost_scaling.h)
  kAuto = 2,         // pick by instance shape (ResolveMatcherBackend)
};

// Stable lowercase name, also the accepted --matcher flag spelling:
// "sspa" | "cost_scaling" | "auto".
const char* MatcherBackendName(MatcherBackendKind kind);

// Parses a --matcher / MCFS_MATCHER spelling. kInvalidInput on anything
// but the three names above ('-' is accepted for '_').
StatusOr<MatcherBackendKind> ParseMatcherBackend(const std::string& name);

// The MCFS_MATCHER environment override, or `fallback` when the
// variable is unset/empty. An unparsable value CHECK-fails: a typo'd
// environment silently running the wrong backend would poison every
// bench number downstream.
MatcherBackendKind MatcherBackendFromEnv(MatcherBackendKind fallback);

// Shape of one batch matching problem, the input of the `auto` model.
struct MatchShape {
  int64_t customers = 0;       // m: units of demand to route
  int64_t facilities = 0;      // candidate facilities in the matching
  int64_t total_capacity = 0;  // sum of facility capacities
  // A warm seed / resumable matcher state is on offer. cost_scaling
  // cannot adopt one (it refuses with kUnsupported), so warm instances
  // resolve to SSPA and keep the incremental amortization.
  bool warm = false;

  // Mean demand per unit of capacity, the paper's occupancy knob. High
  // occupancy means heavy capacity contention: SSPA's augmenting paths
  // grow long chains of rewirings there, which is exactly where the
  // global e-scaling passes win.
  double Occupancy() const {
    if (total_capacity <= 0) return 0.0;
    return static_cast<double>(customers) / static_cast<double>(total_capacity);
  }
};

// Resolves kAuto against the measured crossover model (fitted from
// BENCH_matcher_backends.json, see DESIGN.md §4.12); returns concrete
// kinds unchanged except that warm shapes always resolve to SSPA.
MatcherBackendKind ResolveMatcherBackend(MatcherBackendKind requested,
                                         const MatchShape& shape);

// Result of one batch unit-demand assignment.
struct BatchMatchResult {
  bool all_assigned = false;        // every customer routed to a facility
  std::vector<MatchedPair> pairs;   // one entry per assigned customer
  double total_cost = 0.0;          // sum of pair distances
};

// A batch matching engine: routes one unit of demand per customer to
// the capacitated facilities at minimum total network distance. Both
// implementations consume lazily-materialized G_b edges through
// NearestFacilityStream, so network Dijkstra work stays proportional
// to the edges the optimum actually needs.
class MatcherBackend {
 public:
  virtual ~MatcherBackend() = default;

  virtual MatcherBackendKind kind() const = 0;
  const char* name() const { return MatcherBackendName(kind()); }

  // Solves the assignment. `threads` parallelizes only the candidate
  // stream prefetch (deterministic: prefetching never changes the pop
  // sequence); the result is identical for every thread count.
  virtual BatchMatchResult Match(const Graph* graph,
                                 const std::vector<NodeId>& customer_nodes,
                                 const std::vector<NodeId>& facility_nodes,
                                 const std::vector<int>& capacities,
                                 int threads) = 0;

  // OkStatus when the engine can resume an exported WarmSeed
  // (flow/matcher.h); the typed kUnsupported refusal otherwise. Callers
  // that hold a seed must fall back to a cold solve on refusal.
  virtual Status AcceptsWarmSeed() const = 0;
};

// Registry factory for the concrete (non-auto) kinds. kAuto must be
// resolved with ResolveMatcherBackend first; passing it CHECK-fails.
std::unique_ptr<MatcherBackend> MakeMatcherBackend(MatcherBackendKind kind);

}  // namespace mcfs

#endif  // MCFS_FLOW_MATCHER_BACKEND_H_
