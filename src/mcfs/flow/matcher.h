#ifndef MCFS_FLOW_MATCHER_H_
#define MCFS_FLOW_MATCHER_H_

#include <memory>
#include <vector>

#include "mcfs/common/dary_heap.h"
#include "mcfs/graph/facility_stream.h"
#include "mcfs/graph/graph.h"

namespace mcfs {

// One matched (customer, facility) pair with its network distance.
struct MatchedPair {
  int customer = -1;
  int facility = -1;
  double distance = 0.0;
};

// --- Warm-seed snapshot types (see DESIGN.md §4.10) ---
//
// A completed matcher's state, keyed by *graph nodes* rather than
// catalog indices so it survives candidate-set edits across serving
// epochs: the next epoch maps nodes back to its own indices, drops
// whatever no longer exists, and re-validates the rest.

// One G_b edge of a warm seed.
struct WarmSeedEdge {
  NodeId facility_node = -1;
  double weight = 0.0;  // network distance customer -> facility
  bool matched = false;
};

// Per-customer warm state: materialized edges in stream pop order, the
// stream's discovered-but-unpopped lookahead, and the dual potential.
struct WarmSeedCustomer {
  NodeId node = -1;
  double potential = 0.0;
  std::vector<WarmSeedEdge> edges;     // pop order; `matched` meaningful
  std::vector<WarmSeedEdge> buffered;  // discovered, not yet popped
  // The stream proved there is nothing beyond edges + buffered.
  bool stream_exhausted = false;
  // Distance of the first discovery after `buffered`, when known
  // without further Dijkstra work.
  bool has_next = false;
  double next_distance = kInfDistance;
};

// Complete exportable matcher state (customers, facility potentials).
struct WarmSeed {
  std::vector<WarmSeedCustomer> customers;
  std::vector<NodeId> facility_nodes;
  std::vector<double> facility_potentials;  // aligned with facility_nodes

  bool empty() const { return customers.empty() && facility_nodes.empty(); }
};

// Exact (bitwise on doubles) equality — the contract a serialized seed
// round trip is held to (serve/checkpoint): a restored seed must replay
// warm answers byte-identical to the process that exported it.
inline bool operator==(const WarmSeedEdge& a, const WarmSeedEdge& b) {
  return a.facility_node == b.facility_node && a.weight == b.weight &&
         a.matched == b.matched;
}
inline bool operator==(const WarmSeedCustomer& a, const WarmSeedCustomer& b) {
  return a.node == b.node && a.potential == b.potential && a.edges == b.edges &&
         a.buffered == b.buffered && a.stream_exhausted == b.stream_exhausted &&
         a.has_next == b.has_next && a.next_distance == b.next_distance;
}
inline bool operator==(const WarmSeed& a, const WarmSeed& b) {
  return a.customers == b.customers && a.facility_nodes == b.facility_nodes &&
         a.facility_potentials == b.facility_potentials;
}

// Incremental optimal bipartite matcher between customers and candidate
// facilities anchored in a network — the FindPair routine of the paper
// (Algorithm 2), i.e., a Successive Shortest Path Algorithm over the
// bipartite graph G_b with:
//   * lazy edge materialization: per-customer resumable Dijkstras on the
//     road network stream candidate facilities in distance order, and an
//     edge enters G_b only when the Theorem-1 threshold proves it might
//     shorten the current augmenting path;
//   * node potentials kept so reduced edge weights stay non-negative
//     (freshly materialized edges may briefly violate this; such arcs
//     are tracked and the search falls back to a label-correcting
//     variant until their reduced costs are restored — see DESIGN.md);
//   * rewiring: augmenting along a shortest path reassigns earlier
//     customer-facility matches when beneficial.
//
// Every successful FindPair(c) adds exactly one unit of assignment for
// customer c while keeping the overall matching minimum-cost for the
// current demand vector (verified against a dense oracle in tests).
class IncrementalMatcher {
 public:
  // `facility_nodes` must hold distinct graph nodes; `capacities[j]` is
  // the maximum number of customers facility j can serve. Customer nodes
  // may repeat (several customers on one network node).
  IncrementalMatcher(const Graph* graph, std::vector<NodeId> customer_nodes,
                     std::vector<NodeId> facility_nodes,
                     std::vector<int> capacities);

  // Adds one assignment for `customer` (0-based index). Returns false
  // when no augmenting path exists: every facility still reachable from
  // the customer is saturated and no rewiring can free capacity.
  bool FindPair(int customer);

  // Runs FindPair once for every customer (demand vector of all ones).
  // Returns false if some customer could not be assigned.
  bool MatchAllOnce();

  // Batched parallel prefetch (the WMA hot-path accelerator): for every
  // customer i with counts[i] > 0, ensures its nearest-facility stream
  // has at least counts[i] candidates buffered, advancing the resumable
  // per-customer Dijkstras across up to `threads` threads (0 = the
  // MCFS_THREADS / hardware default). The serial FindPair/SSPA then
  // consumes cached entries instead of paying Dijkstra latency inline.
  // Deterministic: each stream's candidate sequence is a pure function
  // of the graph, so prefetching only moves work earlier — FindPair
  // materializes the exact same edges in the exact same order.
  void PrefetchCandidates(const std::vector<int>& counts, int threads = 0);

  int num_customers() const { return m_; }
  int num_facilities() const { return l_; }

  int AssignedCount(int facility) const { return assigned_count_[facility]; }
  int Capacity(int facility) const { return capacities_[facility]; }
  // Number of facilities the customer currently holds (its satisfied
  // demand).
  int CustomerMatchCount(int customer) const {
    return customer_match_count_[customer];
  }

  // Customers currently assigned to `facility` (the paper's sigma_j).
  std::vector<int> CustomersOf(int facility) const;

  // All matched pairs with distances.
  std::vector<MatchedPair> MatchedPairs() const;

  // --- Warm-seed lifecycle (DESIGN.md §4.10) ---

  // What ResumeFrom managed to salvage from a seed.
  struct ResumeStats {
    int64_t customers_seeded = 0;  // customers that adopted seed state
    int64_t edges_adopted = 0;     // G_b edges rebuilt from the seed
    int64_t matches_adopted = 0;   // matched pairs still dual-feasible
    int64_t matches_dropped = 0;   // filtered / infeasible / over-capacity
  };

  // Node-keyed snapshot of the full matcher state (G_b adjacency with
  // matched flags, stream lookahead, customer and facility potentials).
  WarmSeed ExportWarmSeed() const;

  // Warm-start resume; must be called on a freshly constructed matcher,
  // before any FindPair. `seed_of[i]` is the index into seed.customers
  // whose state customer i adopts (-1 = cold customer; seed customers
  // must sit on the same graph node). `adopt_match[i] == 0` keeps the
  // customer's edges and stream but drops its matched pairs — the
  // repair mode for deltas that invalidate matching optimality without
  // touching distances (e.g. a capacity increase in the component).
  //
  // Per edge: facilities gone from this matcher's catalog are filtered
  // out; matched edges are re-adopted only while dual-feasible (forward
  // reduced cost <= eps, i.e. the residual arc stays non-negative) and
  // capacity remains. A customer left holding a negative unmatched arc
  // has all its adopted matches dropped and the arcs registered for the
  // label-correcting search — an unmatched customer has no incoming
  // residual arc, so no negative cycle survives. After ResumeFrom the
  // caller re-runs FindPair only for customers with unsatisfied demand.
  ResumeStats ResumeFrom(const WarmSeed& seed, const std::vector<int>& seed_of,
                         const std::vector<uint8_t>& adopt_match);

  // Trajectory-replay seeding: hands customer i a seed customer's full
  // discovery prefix (edges + buffered) as a stream seed. Because the
  // discovery sequence is a pure function of (graph, source, candidate
  // membership), the customer's Pops replay bit-identically to a cold
  // run, minus the Dijkstra cost. Facilities absent from this matcher's
  // catalog are filtered out. Must be called before the customer's
  // stream is first touched; adopts no matcher state (edges, matches,
  // potentials stay cold).
  void SeedStreamPrefix(int customer, const WarmSeedCustomer& seed_customer);

  // Sum of matched distances (the running objective of G_b).
  double TotalCost() const;

  // Debug invariant: every materialized edge must have non-negative
  // reduced cost under the current potentials (dual feasibility), except
  // the freshly added arcs tracked in the negative list. Returns true
  // when the invariant holds; O(total edges). Used by property tests.
  bool VerifyDualFeasibility() const;

  // --- instrumentation ---
  // (Mirrored into the obs MetricsRegistry under matcher/*; these
  // accessors keep the counts reachable without enabling metrics.)
  int64_t num_dijkstra_runs() const { return num_dijkstra_runs_; }
  int64_t num_edges_materialized() const { return num_edges_materialized_; }
  int64_t num_label_correcting_runs() const {
    return num_label_correcting_runs_;
  }
  // Augmentations accepted by the Theorem-1 threshold test while the
  // candidate streams still had undiscovered facilities — each one cut
  // the lazy edge materialization short (the paper's pruning claim).
  int64_t num_theorem1_prunes() const { return num_theorem1_prunes_; }
  // Edge materializations forced because the threshold test failed.
  int64_t num_forced_materializations() const {
    return num_forced_materializations_;
  }
  // Matched edges unmatched again while augmenting (the rewiring that
  // distinguishes the exact matcher from WMA Naive).
  int64_t num_rewirings() const { return num_rewirings_; }

 private:
  struct MatchEdge {
    int facility;
    double weight;
    bool matched;
  };
  struct FacilityMatch {
    int customer;
    double weight;
  };
  // Result of one shortest-path search over the materialized G_b.
  struct SearchResult {
    int sink_facility = -1;       // facility index, -1 if none reachable
    double sink_distance = 0.0;   // reduced path length to the sink
    double threshold = 0.0;       // Theorem-1 bound; kInfDistance if none
    int threshold_customer = -1;  // argmin customer for materialization
    // SIA-style looser lower bound computed alongside the Theorem-1
    // threshold (min over customers of dist + nnDist, potentials bounded
    // globally instead of per node); used only for the
    // matcher/theorem1_savings_vs_naive counter.
    double naive_threshold = 0.0;
  };

  int GbFacilityNode(int facility) const { return m_ + facility; }

  // Catalog index of the facility on `node`, or -1 (also for
  // out-of-range nodes from a stale seed).
  int MapFacilityNode(NodeId node) const {
    if (node < 0 ||
        node >= static_cast<NodeId>(facility_index_of_node_.size())) {
      return -1;
    }
    return facility_index_of_node_[node];
  }
  size_t StreamReserveHint() const;

  NearestFacilityStream& StreamFor(int customer);
  // Materializes customer's next nearest facility edge; returns false if
  // the stream is exhausted.
  bool MaterializeNextEdge(int customer);
  SearchResult Search(int source_customer);
  void Augment(int source_customer, const SearchResult& found);
  void UpdatePotentials(double sink_distance);
  void RecheckNegativeArcs();
  double ReducedCost(int customer, const MatchEdge& edge) const {
    return edge.weight - potential_[customer] +
           potential_[GbFacilityNode(edge.facility)];
  }

  const Graph* graph_;
  int m_;
  int l_;
  std::vector<NodeId> customer_nodes_;
  std::vector<NodeId> facility_nodes_;
  std::vector<int> capacities_;
  std::vector<int> assigned_count_;
  std::vector<int> customer_match_count_;
  std::vector<std::vector<MatchEdge>> edges_;  // per customer
  std::vector<std::vector<FacilityMatch>> facility_matches_;  // per facility
  std::vector<double> potential_;  // size m_ + l_
  std::vector<int> facility_index_of_node_;  // size graph nodes
  std::vector<std::unique_ptr<NearestFacilityStream>> streams_;
  std::vector<std::pair<int, int>> negative_arcs_;  // (customer, edge idx)

  struct GbHeapEntry {
    double dist;
    int node;
  };
  struct GbHeapEntryLess {
    bool operator()(const GbHeapEntry& a, const GbHeapEntry& b) const {
      return a.dist < b.dist;
    }
  };

  // Search scratch (size m_ + l_), reset via touched_ between searches.
  std::vector<double> dist_;
  std::vector<int> parent_;  // predecessor encoding, see Search()
  std::vector<uint8_t> settled_;
  std::vector<int> touched_;
  // Hoisted G_b search heap: cleared (capacity kept) at the start of
  // every Search, so FindPair pays no heap allocation per call.
  DaryHeap<GbHeapEntry, 4, GbHeapEntryLess> search_heap_;

  int64_t num_dijkstra_runs_ = 0;
  int64_t num_edges_materialized_ = 0;
  int64_t num_label_correcting_runs_ = 0;
  int64_t num_theorem1_prunes_ = 0;
  int64_t num_forced_materializations_ = 0;
  int64_t num_rewirings_ = 0;
};

}  // namespace mcfs

#endif  // MCFS_FLOW_MATCHER_H_
