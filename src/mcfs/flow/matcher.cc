#include "mcfs/flow/matcher.h"

#include <algorithm>

#include "mcfs/common/check.h"
#include "mcfs/common/thread_pool.h"
#include "mcfs/graph/dijkstra.h"
#include "mcfs/obs/flight_recorder.h"
#include "mcfs/obs/metrics.h"

namespace mcfs {

namespace {
constexpr double kEps = 1e-9;
}  // namespace

IncrementalMatcher::IncrementalMatcher(const Graph* graph,
                                       std::vector<NodeId> customer_nodes,
                                       std::vector<NodeId> facility_nodes,
                                       std::vector<int> capacities)
    : graph_(graph),
      m_(static_cast<int>(customer_nodes.size())),
      l_(static_cast<int>(facility_nodes.size())),
      customer_nodes_(std::move(customer_nodes)),
      facility_nodes_(std::move(facility_nodes)),
      capacities_(std::move(capacities)) {
  MCFS_CHECK_EQ(capacities_.size(), facility_nodes_.size());
  assigned_count_.assign(l_, 0);
  customer_match_count_.assign(m_, 0);
  edges_.resize(m_);
  facility_matches_.resize(l_);
  potential_.assign(m_ + l_, 0.0);
  facility_index_of_node_.assign(graph_->NumNodes(), -1);
  for (int j = 0; j < l_; ++j) {
    NodeId node = facility_nodes_[j];
    MCFS_CHECK(node >= 0 && node < graph_->NumNodes());
    MCFS_CHECK_EQ(facility_index_of_node_[node], -1)
        << "two candidate facilities on node " << node;
    facility_index_of_node_[node] = j;
    MCFS_CHECK_GE(capacities_[j], 0);
  }
  streams_.resize(m_);
  dist_.assign(m_ + l_, kInfDistance);
  parent_.assign(m_ + l_, -1);
  settled_.assign(m_ + l_, 0);
}

size_t IncrementalMatcher::StreamReserveHint() const {
  // Reserve hint from the instance shape: with l_ candidates spread
  // over the network a customer settles ~NumNodes/l_ nodes per
  // discovered facility, and FindPair rarely needs more than a few
  // candidates per customer.
  return std::min<size_t>(
      static_cast<size_t>(graph_->NumNodes()),
      8 + 4 * static_cast<size_t>(graph_->NumNodes()) /
              static_cast<size_t>(std::max(1, l_)));
}

NearestFacilityStream& IncrementalMatcher::StreamFor(int customer) {
  if (streams_[customer] == nullptr) {
    streams_[customer] = std::make_unique<NearestFacilityStream>(
        graph_, customer_nodes_[customer], &facility_index_of_node_,
        StreamReserveHint());
  }
  return *streams_[customer];
}

void IncrementalMatcher::SeedStreamPrefix(
    int customer, const WarmSeedCustomer& seed_customer) {
  MCFS_CHECK(customer >= 0 && customer < m_);
  MCFS_CHECK(streams_[customer] == nullptr)
      << "SeedStreamPrefix after the stream was already created";
  MCFS_CHECK_EQ(seed_customer.node, customer_nodes_[customer]);
  StreamSeed seed;
  seed.buffered.reserve(seed_customer.edges.size() +
                        seed_customer.buffered.size());
  bool filtered = false;
  auto map_in = [&](const WarmSeedEdge& entry) {
    const int j = MapFacilityNode(entry.facility_node);
    if (j < 0) {
      filtered = true;
      return;
    }
    seed.buffered.push_back(FacilityAtDistance{j, entry.weight});
  };
  for (const WarmSeedEdge& entry : seed_customer.edges) map_in(entry);
  for (const WarmSeedEdge& entry : seed_customer.buffered) map_in(entry);
  seed.exhausted = seed_customer.stream_exhausted;
  // The seed's known next-distance describes the sequence it was
  // exported under; once entries were filtered out, "what comes after
  // the prefix" may differ, so only propagate it for intact prefixes.
  seed.has_next = seed_customer.has_next && !filtered;
  seed.next_distance = seed_customer.next_distance;
  MCFS_COUNT("matcher/warm_stream_prefix_entries",
             static_cast<int64_t>(seed.buffered.size()));
  streams_[customer] = std::make_unique<NearestFacilityStream>(
      graph_, customer_nodes_[customer], &facility_index_of_node_,
      std::move(seed), StreamReserveHint());
}

bool IncrementalMatcher::MaterializeNextEdge(int customer) {
  std::optional<FacilityAtDistance> next = StreamFor(customer).Pop();
  if (!next.has_value()) return false;
  edges_[customer].push_back({next->facility, next->distance, false});
  ++num_edges_materialized_;
  MCFS_COUNT("matcher/edges_materialized", 1);
  const MatchEdge& edge = edges_[customer].back();
  if (ReducedCost(customer, edge) < -kEps) {
    negative_arcs_.emplace_back(
        customer, static_cast<int>(edges_[customer].size()) - 1);
  }
  return true;
}

IncrementalMatcher::SearchResult IncrementalMatcher::Search(
    int source_customer) {
  ++num_dijkstra_runs_;
  const bool exact = negative_arcs_.empty();
  if (!exact) ++num_label_correcting_runs_;

  // Reset scratch for the nodes touched by the previous search.
  for (const int v : touched_) {
    dist_[v] = kInfDistance;
    parent_[v] = -1;
    settled_[v] = 0;
  }
  touched_.clear();

  // Reuse the member heap's backing storage across searches (the
  // allocation-free hot loop; see DESIGN.md "Sparse-search kernels").
  if (search_heap_.capacity() > 0) {
    MCFS_COUNT("exec/alloc/matcher_heap_reuses", 1);
  }
  search_heap_.clear();
  dist_[source_customer] = 0.0;
  touched_.push_back(source_customer);
  search_heap_.push({0.0, source_customer});

  SearchResult result;
  result.sink_facility = -1;
  result.sink_distance = kInfDistance;

  // Counted in locals and flushed once per search: this loop is the G_b
  // hot path and runs on the (serial) matcher thread.
  int64_t gb_settled = 0;
  int64_t gb_relaxed = 0;
  int64_t gb_heap_pushes = 0;

  auto relax = [&](int from, int to, double reduced_weight) {
    ++gb_relaxed;
    const double candidate = dist_[from] + reduced_weight;
    if (candidate < dist_[to] - kEps) {
      if (dist_[to] == kInfDistance) touched_.push_back(to);
      dist_[to] = candidate;
      parent_[to] = from;
      settled_[to] = 0;  // label-correcting: allow re-settling
      search_heap_.push({candidate, to});
      ++gb_heap_pushes;
    }
  };

  while (!search_heap_.empty()) {
    const GbHeapEntry top = search_heap_.top();
    search_heap_.pop();
    if (settled_[top.node] || top.dist > dist_[top.node] + kEps) continue;
    settled_[top.node] = 1;
    ++gb_settled;
    if (top.node >= m_) {
      // Facility node.
      const int j = top.node - m_;
      if (exact && assigned_count_[j] < capacities_[j]) {
        result.sink_facility = j;
        result.sink_distance = top.dist;
        break;  // early stop: first settled usable facility is nearest
      }
      for (const FacilityMatch& match : facility_matches_[j]) {
        relax(top.node, match.customer,
              -match.weight - potential_[top.node] +
                  potential_[match.customer]);
      }
    } else {
      // Customer node.
      const int i = top.node;
      for (const MatchEdge& edge : edges_[i]) {
        if (edge.matched) continue;
        relax(top.node, GbFacilityNode(edge.facility),
              ReducedCost(i, edge));
      }
    }
  }

  // In label-correcting mode (or when no usable facility was settled in
  // exact mode), pick the best reached facility with residual capacity.
  if (result.sink_facility == -1) {
    for (const int v : touched_) {
      if (v < m_) continue;
      const int j = v - m_;
      if (assigned_count_[j] < capacities_[j] &&
          dist_[v] < result.sink_distance) {
        result.sink_facility = j;
        result.sink_distance = dist_[v];
      }
    }
  }

  // Theorem-1 threshold: min over reached customers v of
  //   v.dist + nnDist(v) - v.p,
  // where unsettled (frontier) customers use the sink distance as a
  // valid lower bound for v.dist.
  result.threshold = kInfDistance;
  result.threshold_customer = -1;
  // The naive (SIA-style) bound replaces the per-customer potential with
  // a single global one, so it is never tighter than Theorem 1:
  //   naive = min_v (v.dist + nnDist(v)) - max_v potential[v].
  double naive_min_reach = kInfDistance;
  double naive_max_potential = 0.0;
  for (const int v : touched_) {
    if (v >= m_) continue;
    naive_max_potential = std::max(naive_max_potential, potential_[v]);
    const double nn_dist = StreamFor(v).PeekDistance();
    if (nn_dist == kInfDistance) continue;
    double v_dist = dist_[v];
    if (!settled_[v] && result.sink_facility != -1) {
      v_dist = std::min(v_dist, result.sink_distance);
    }
    naive_min_reach = std::min(naive_min_reach, v_dist + nn_dist);
    const double value = v_dist + nn_dist - potential_[v];
    if (value < result.threshold) {
      result.threshold = value;
      result.threshold_customer = v;
    }
  }
  result.naive_threshold = naive_min_reach == kInfDistance
                               ? kInfDistance
                               : naive_min_reach - naive_max_potential;

  MCFS_COUNT("matcher/searches", 1);
  if (!exact) MCFS_COUNT("matcher/label_correcting_searches", 1);
  MCFS_COUNT("matcher/gb_nodes_settled", gb_settled);
  MCFS_COUNT("matcher/gb_edges_relaxed", gb_relaxed);
  MCFS_COUNT("matcher/gb_heap_pushes", gb_heap_pushes);
  return result;
}

void IncrementalMatcher::Augment(int source_customer,
                                 const SearchResult& found) {
  int64_t path_edges = 0;
  int64_t rewirings = 0;
  int current = GbFacilityNode(found.sink_facility);
  while (current != source_customer) {
    const int prev = parent_[current];
    MCFS_CHECK_GE(prev, 0);
    ++path_edges;
    if (current >= m_) {
      // prev is a customer: match edge (prev -> current).
      const int facility = current - m_;
      bool flipped = false;
      for (MatchEdge& edge : edges_[prev]) {
        if (edge.facility == facility && !edge.matched) {
          edge.matched = true;
          facility_matches_[facility].push_back({prev, edge.weight});
          flipped = true;
          break;
        }
      }
      MCFS_CHECK(flipped);
    } else {
      // prev is a facility: unmatch edge (current -> prev).
      const int facility = prev - m_;
      ++rewirings;
      bool flipped = false;
      for (MatchEdge& edge : edges_[current]) {
        if (edge.facility == facility && edge.matched) {
          edge.matched = false;
          flipped = true;
          break;
        }
      }
      MCFS_CHECK(flipped);
      auto& matches = facility_matches_[facility];
      for (size_t i = 0; i < matches.size(); ++i) {
        if (matches[i].customer == current) {
          matches[i] = matches.back();
          matches.pop_back();
          break;
        }
      }
    }
    current = prev;
  }
  assigned_count_[found.sink_facility]++;
  customer_match_count_[source_customer]++;
  num_rewirings_ += rewirings;
  MCFS_COUNT("matcher/augmentations", 1);
  MCFS_COUNT("matcher/rewirings", rewirings);
  MCFS_OBSERVE("matcher/augmenting_path_edges",
               static_cast<double>(path_edges));
}

void IncrementalMatcher::UpdatePotentials(double sink_distance) {
  for (const int v : touched_) {
    if (dist_[v] <= sink_distance) {
      potential_[v] += sink_distance - dist_[v];
    }
  }
}

void IncrementalMatcher::RecheckNegativeArcs() {
  size_t kept = 0;
  for (const auto& [customer, edge_index] : negative_arcs_) {
    const MatchEdge& edge = edges_[customer][edge_index];
    if (!edge.matched && ReducedCost(customer, edge) < -kEps) {
      negative_arcs_[kept++] = {customer, edge_index};
    }
  }
  negative_arcs_.resize(kept);
}

bool IncrementalMatcher::FindPair(int customer) {
  MCFS_CHECK(customer >= 0 && customer < m_);
  while (true) {
    const SearchResult found = Search(customer);
    const bool have_sink = found.sink_facility != -1;
    if (have_sink && found.sink_distance <= found.threshold + kEps) {
      if (found.threshold != kInfDistance) {
        // The streams still held undiscovered facilities, yet Theorem 1
        // proved none of them can shorten this path: one prune.
        ++num_theorem1_prunes_;
        MCFS_COUNT("matcher/theorem1_prunes", 1);
        if (found.sink_distance > found.naive_threshold + kEps) {
          // The looser SIA-style bound would have kept materializing.
          MCFS_COUNT("matcher/theorem1_savings_vs_naive", 1);
        }
      }
      Augment(customer, found);
      UpdatePotentials(found.sink_distance);
      RecheckNegativeArcs();
      return true;
    }
    if (found.threshold == kInfDistance) {
      // No more edges can be materialized anywhere reachable.
      if (have_sink) {
        Augment(customer, found);
        UpdatePotentials(found.sink_distance);
        RecheckNegativeArcs();
        return true;
      }
      return false;  // customer is saturated
    }
    ++num_forced_materializations_;
    MCFS_COUNT("matcher/forced_materializations", 1);
    const bool added = MaterializeNextEdge(found.threshold_customer);
    MCFS_CHECK(added);  // threshold was finite, so the stream had a peek
  }
}

bool IncrementalMatcher::MatchAllOnce() {
  bool all_ok = true;
  for (int i = 0; i < m_; ++i) {
    if (!FindPair(i)) all_ok = false;
  }
  return all_ok;
}

void IncrementalMatcher::PrefetchCandidates(const std::vector<int>& counts,
                                            int threads) {
  MCFS_CHECK_EQ(counts.size(), static_cast<size_t>(m_));
  if (ResolveThreadCount(threads) <= 1) return;  // FindPair pays inline
  // Each index touches only customer i's stream (creation included), so
  // side effects are disjoint and the result is thread-count invariant.
  ParallelFor(
      0, m_, /*grain=*/1,
      [&](int64_t i) {
        const int customer = static_cast<int>(i);
        if (counts[customer] <= 0) return;
        StreamFor(customer).Prefetch(counts[customer]);
      },
      threads);
}

std::vector<int> IncrementalMatcher::CustomersOf(int facility) const {
  std::vector<int> customers;
  customers.reserve(facility_matches_[facility].size());
  for (const FacilityMatch& match : facility_matches_[facility]) {
    customers.push_back(match.customer);
  }
  return customers;
}

std::vector<MatchedPair> IncrementalMatcher::MatchedPairs() const {
  std::vector<MatchedPair> pairs;
  for (int i = 0; i < m_; ++i) {
    for (const MatchEdge& edge : edges_[i]) {
      if (edge.matched) pairs.push_back({i, edge.facility, edge.weight});
    }
  }
  return pairs;
}

WarmSeed IncrementalMatcher::ExportWarmSeed() const {
  WarmSeed seed;
  seed.facility_nodes = facility_nodes_;
  seed.facility_potentials.resize(l_);
  for (int j = 0; j < l_; ++j) {
    seed.facility_potentials[j] = potential_[m_ + j];
  }
  seed.customers.resize(m_);
  for (int i = 0; i < m_; ++i) {
    WarmSeedCustomer& sc = seed.customers[i];
    sc.node = customer_nodes_[i];
    sc.potential = potential_[i];
    sc.edges.reserve(edges_[i].size());
    for (const MatchEdge& edge : edges_[i]) {
      sc.edges.push_back(
          WarmSeedEdge{facility_nodes_[edge.facility], edge.weight,
                       edge.matched});
    }
    const NearestFacilityStream* stream = streams_[i].get();
    if (stream == nullptr) continue;  // never explored: empty prefix
    for (const FacilityAtDistance& entry : stream->BufferedEntries()) {
      sc.buffered.push_back(
          WarmSeedEdge{facility_nodes_[entry.facility], entry.distance,
                       false});
    }
    sc.stream_exhausted = stream->DijkstraExhausted();
    // Unpopped entries are a suffix of what the stream was seeded with,
    // so a still-pending known-next applies after them unchanged.
    if (std::optional<double> next = stream->KnownNextDistance()) {
      sc.has_next = true;
      sc.next_distance = *next;
    }
  }
  return seed;
}

IncrementalMatcher::ResumeStats IncrementalMatcher::ResumeFrom(
    const WarmSeed& seed, const std::vector<int>& seed_of,
    const std::vector<uint8_t>& adopt_match) {
  MCFS_CHECK_EQ(seed_of.size(), static_cast<size_t>(m_));
  MCFS_CHECK_EQ(adopt_match.size(), static_cast<size_t>(m_));
  MCFS_CHECK_EQ(num_edges_materialized_, 0)
      << "ResumeFrom requires a freshly constructed matcher";
  MCFS_CHECK_EQ(seed.facility_potentials.size(), seed.facility_nodes.size());
  ResumeStats stats;

  // Facility potentials first: edge re-validation below reads them.
  // Facilities absent from the seed (fresh candidates) keep potential 0,
  // which is always dual-feasible for edges not yet materialized.
  for (size_t sj = 0; sj < seed.facility_nodes.size(); ++sj) {
    const int j = MapFacilityNode(seed.facility_nodes[sj]);
    if (j >= 0) potential_[GbFacilityNode(j)] = seed.facility_potentials[sj];
  }

  for (int i = 0; i < m_; ++i) {
    const int s = seed_of[i];
    if (s < 0) continue;
    MCFS_CHECK(s < static_cast<int>(seed.customers.size()));
    const WarmSeedCustomer& sc = seed.customers[s];
    MCFS_CHECK_EQ(sc.node, customer_nodes_[i])
        << "seed customer mapped across graph nodes";
    ++stats.customers_seeded;
    potential_[i] = sc.potential;

    bool filtered = false;
    edges_[i].reserve(sc.edges.size());
    for (const WarmSeedEdge& entry : sc.edges) {
      const int j = MapFacilityNode(entry.facility_node);
      if (j < 0) {
        filtered = true;
        if (entry.matched) ++stats.matches_dropped;
        continue;
      }
      edges_[i].push_back(MatchEdge{j, entry.weight, false});
      ++stats.edges_adopted;
      if (!entry.matched) continue;
      MatchEdge& edge = edges_[i].back();
      // Re-adopt the matched pair only while the residual (backward)
      // arc stays non-negative — forward reduced cost <= eps — and the
      // facility still has capacity under the current limits. A
      // capacity decrease thus sheds deterministic overflow here.
      if (adopt_match[i] != 0 && ReducedCost(i, edge) <= kEps &&
          assigned_count_[j] < capacities_[j]) {
        edge.matched = true;
        facility_matches_[j].push_back(FacilityMatch{i, entry.weight});
        ++assigned_count_[j];
        ++customer_match_count_[i];
        ++stats.matches_adopted;
      } else {
        ++stats.matches_dropped;
      }
    }

    StreamSeed stream_seed;
    stream_seed.buffered.reserve(sc.buffered.size());
    for (const WarmSeedEdge& entry : sc.buffered) {
      const int j = MapFacilityNode(entry.facility_node);
      if (j < 0) {
        filtered = true;
        continue;
      }
      stream_seed.buffered.push_back(FacilityAtDistance{j, entry.weight});
    }
    // The adopted edges were the stream's consumed prefix; skip their
    // re-discovery if the Dijkstra ever has to run.
    stream_seed.skip_discoveries = static_cast<int>(edges_[i].size());
    stream_seed.exhausted = sc.stream_exhausted;
    stream_seed.has_next = sc.has_next && !filtered;
    stream_seed.next_distance = sc.next_distance;
    MCFS_CHECK(streams_[i] == nullptr);
    streams_[i] = std::make_unique<NearestFacilityStream>(
        graph_, customer_nodes_[i], &facility_index_of_node_,
        std::move(stream_seed), StreamReserveHint());
  }

  // Re-establish the two invariants every search relies on:
  //   * a facility with residual capacity has potential exactly 0 (the
  //     sink selection compares reduced distances across free slots,
  //     which is only meaningful when their potentials agree) — adopted
  //     potentials violate this wherever a previously saturated
  //     facility gained capacity or lost its matches;
  //   * a customer owning an unmatched arc with negative reduced cost
  //     holds no matches (it could otherwise close a negative cycle) —
  //     such customers shed every adoption and reset their potential to
  //     0, which makes all their arcs non-negative again (weights and
  //     facility potentials are both >= 0), so the matcher never leaves
  //     ResumeFrom in label-correcting mode.
  // Clamping a facility can surface new negative arcs and dropping a
  // match can free a saturated facility, so iterate to the fixpoint —
  // both moves are monotone (potentials only fall to 0, matches only
  // drop), so it terminates.
  bool changed = true;
  while (changed) {
    changed = false;
    for (int j = 0; j < l_; ++j) {
      if (assigned_count_[j] < capacities_[j] &&
          potential_[GbFacilityNode(j)] != 0.0) {
        potential_[GbFacilityNode(j)] = 0.0;
        changed = true;
      }
    }
    for (int i = 0; i < m_; ++i) {
      if (seed_of[i] < 0) continue;
      bool has_negative = false;
      for (const MatchEdge& edge : edges_[i]) {
        if (!edge.matched && ReducedCost(i, edge) < -kEps) {
          has_negative = true;
          break;
        }
      }
      if (!has_negative) continue;
      for (MatchEdge& edge : edges_[i]) {
        if (!edge.matched) continue;
        edge.matched = false;
        --assigned_count_[edge.facility];
        --customer_match_count_[i];
        --stats.matches_adopted;
        ++stats.matches_dropped;
        auto& matches = facility_matches_[edge.facility];
        for (size_t idx = 0; idx < matches.size(); ++idx) {
          if (matches[idx].customer == i) {
            matches[idx] = matches.back();
            matches.pop_back();
            break;
          }
        }
      }
      potential_[i] = 0.0;
      changed = true;
    }
  }

  num_edges_materialized_ += stats.edges_adopted;
  MCFS_COUNT("matcher/warm_customers_seeded", stats.customers_seeded);
  MCFS_COUNT("matcher/warm_edges_adopted", stats.edges_adopted);
  MCFS_COUNT("matcher/warm_matches_adopted", stats.matches_adopted);
  MCFS_COUNT("matcher/warm_matches_dropped", stats.matches_dropped);
  // Warm-seed repair decision: how much of the previous epoch survived
  // re-validation (a = adopted matches, b = shed matches). The shape of
  // these pairs in a postmortem tells an operator whether a slow warm
  // solve degenerated into a near-cold one.
  MCFS_RECORD("matcher/warm_resume", stats.matches_adopted,
              stats.matches_dropped);
  return stats;
}

bool IncrementalMatcher::VerifyDualFeasibility() const {
  // Freshly materialized arcs may legitimately be negative until the
  // next augmentation repairs the potentials.
  std::vector<std::vector<uint8_t>> excused(m_);
  for (const auto& [customer, edge_index] : negative_arcs_) {
    if (excused[customer].empty()) {
      excused[customer].assign(edges_[customer].size(), 0);
    }
    excused[customer][edge_index] = 1;
  }
  for (int i = 0; i < m_; ++i) {
    for (size_t e = 0; e < edges_[i].size(); ++e) {
      const MatchEdge& edge = edges_[i][e];
      if (!excused[i].empty() && excused[i][e]) continue;
      if (edge.matched) {
        // Residual direction facility -> customer.
        const double reduced = -edge.weight -
                               potential_[GbFacilityNode(edge.facility)] +
                               potential_[i];
        if (reduced < -1e-6) return false;
      } else {
        if (ReducedCost(i, edge) < -1e-6) return false;
      }
    }
  }
  return true;
}

double IncrementalMatcher::TotalCost() const {
  double total = 0.0;
  for (int i = 0; i < m_; ++i) {
    for (const MatchEdge& edge : edges_[i]) {
      if (edge.matched) total += edge.weight;
    }
  }
  return total;
}

}  // namespace mcfs
