file(REMOVE_RECURSE
  "CMakeFiles/bike_docking.dir/bike_docking.cpp.o"
  "CMakeFiles/bike_docking.dir/bike_docking.cpp.o.d"
  "bike_docking"
  "bike_docking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bike_docking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
