# Empty compiler generated dependencies file for bike_docking.
# This may be replaced when dependencies are built.
