file(REMOVE_RECURSE
  "CMakeFiles/visualize_solution.dir/visualize_solution.cpp.o"
  "CMakeFiles/visualize_solution.dir/visualize_solution.cpp.o.d"
  "visualize_solution"
  "visualize_solution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visualize_solution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
