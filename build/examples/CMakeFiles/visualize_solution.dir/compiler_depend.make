# Empty compiler generated dependencies file for visualize_solution.
# This may be replaced when dependencies are built.
