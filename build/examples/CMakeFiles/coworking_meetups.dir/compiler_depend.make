# Empty compiler generated dependencies file for coworking_meetups.
# This may be replaced when dependencies are built.
