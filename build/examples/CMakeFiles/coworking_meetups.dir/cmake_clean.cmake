file(REMOVE_RECURSE
  "CMakeFiles/coworking_meetups.dir/coworking_meetups.cpp.o"
  "CMakeFiles/coworking_meetups.dir/coworking_meetups.cpp.o.d"
  "coworking_meetups"
  "coworking_meetups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coworking_meetups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
