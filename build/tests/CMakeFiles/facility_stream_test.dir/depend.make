# Empty dependencies file for facility_stream_test.
# This may be replaced when dependencies are built.
