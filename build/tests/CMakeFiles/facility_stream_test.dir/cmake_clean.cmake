file(REMOVE_RECURSE
  "CMakeFiles/facility_stream_test.dir/facility_stream_test.cc.o"
  "CMakeFiles/facility_stream_test.dir/facility_stream_test.cc.o.d"
  "facility_stream_test"
  "facility_stream_test.pdb"
  "facility_stream_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/facility_stream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
