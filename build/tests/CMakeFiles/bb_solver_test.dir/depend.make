# Empty dependencies file for bb_solver_test.
# This may be replaced when dependencies are built.
