file(REMOVE_RECURSE
  "CMakeFiles/bb_solver_test.dir/bb_solver_test.cc.o"
  "CMakeFiles/bb_solver_test.dir/bb_solver_test.cc.o.d"
  "bb_solver_test"
  "bb_solver_test.pdb"
  "bb_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bb_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
