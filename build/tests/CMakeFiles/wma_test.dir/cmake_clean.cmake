file(REMOVE_RECURSE
  "CMakeFiles/wma_test.dir/wma_test.cc.o"
  "CMakeFiles/wma_test.dir/wma_test.cc.o.d"
  "wma_test"
  "wma_test.pdb"
  "wma_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
