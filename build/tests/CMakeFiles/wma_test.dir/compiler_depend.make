# Empty compiler generated dependencies file for wma_test.
# This may be replaced when dependencies are built.
