file(REMOVE_RECURSE
  "CMakeFiles/distance_matrix_test.dir/distance_matrix_test.cc.o"
  "CMakeFiles/distance_matrix_test.dir/distance_matrix_test.cc.o.d"
  "distance_matrix_test"
  "distance_matrix_test.pdb"
  "distance_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distance_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
