# Empty dependencies file for matcher_invariants_test.
# This may be replaced when dependencies are built.
