file(REMOVE_RECURSE
  "CMakeFiles/matcher_invariants_test.dir/matcher_invariants_test.cc.o"
  "CMakeFiles/matcher_invariants_test.dir/matcher_invariants_test.cc.o.d"
  "matcher_invariants_test"
  "matcher_invariants_test.pdb"
  "matcher_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matcher_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
