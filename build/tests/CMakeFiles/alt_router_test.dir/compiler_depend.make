# Empty compiler generated dependencies file for alt_router_test.
# This may be replaced when dependencies are built.
