file(REMOVE_RECURSE
  "CMakeFiles/alt_router_test.dir/alt_router_test.cc.o"
  "CMakeFiles/alt_router_test.dir/alt_router_test.cc.o.d"
  "alt_router_test"
  "alt_router_test.pdb"
  "alt_router_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alt_router_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
