file(REMOVE_RECURSE
  "CMakeFiles/greedy_kmedian_test.dir/greedy_kmedian_test.cc.o"
  "CMakeFiles/greedy_kmedian_test.dir/greedy_kmedian_test.cc.o.d"
  "greedy_kmedian_test"
  "greedy_kmedian_test.pdb"
  "greedy_kmedian_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greedy_kmedian_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
