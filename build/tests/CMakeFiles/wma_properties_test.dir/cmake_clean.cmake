file(REMOVE_RECURSE
  "CMakeFiles/wma_properties_test.dir/wma_properties_test.cc.o"
  "CMakeFiles/wma_properties_test.dir/wma_properties_test.cc.o.d"
  "wma_properties_test"
  "wma_properties_test.pdb"
  "wma_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wma_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
