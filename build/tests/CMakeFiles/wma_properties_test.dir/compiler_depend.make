# Empty compiler generated dependencies file for wma_properties_test.
# This may be replaced when dependencies are built.
