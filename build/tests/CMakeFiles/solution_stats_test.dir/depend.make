# Empty dependencies file for solution_stats_test.
# This may be replaced when dependencies are built.
