file(REMOVE_RECURSE
  "CMakeFiles/solution_stats_test.dir/solution_stats_test.cc.o"
  "CMakeFiles/solution_stats_test.dir/solution_stats_test.cc.o.d"
  "solution_stats_test"
  "solution_stats_test.pdb"
  "solution_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solution_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
