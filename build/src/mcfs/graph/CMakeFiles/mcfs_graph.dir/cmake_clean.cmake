file(REMOVE_RECURSE
  "CMakeFiles/mcfs_graph.dir/alt_router.cc.o"
  "CMakeFiles/mcfs_graph.dir/alt_router.cc.o.d"
  "CMakeFiles/mcfs_graph.dir/contraction_hierarchy.cc.o"
  "CMakeFiles/mcfs_graph.dir/contraction_hierarchy.cc.o.d"
  "CMakeFiles/mcfs_graph.dir/dijkstra.cc.o"
  "CMakeFiles/mcfs_graph.dir/dijkstra.cc.o.d"
  "CMakeFiles/mcfs_graph.dir/facility_stream.cc.o"
  "CMakeFiles/mcfs_graph.dir/facility_stream.cc.o.d"
  "CMakeFiles/mcfs_graph.dir/generators.cc.o"
  "CMakeFiles/mcfs_graph.dir/generators.cc.o.d"
  "CMakeFiles/mcfs_graph.dir/graph.cc.o"
  "CMakeFiles/mcfs_graph.dir/graph.cc.o.d"
  "CMakeFiles/mcfs_graph.dir/graph_io.cc.o"
  "CMakeFiles/mcfs_graph.dir/graph_io.cc.o.d"
  "CMakeFiles/mcfs_graph.dir/road_network.cc.o"
  "CMakeFiles/mcfs_graph.dir/road_network.cc.o.d"
  "CMakeFiles/mcfs_graph.dir/spatial_index.cc.o"
  "CMakeFiles/mcfs_graph.dir/spatial_index.cc.o.d"
  "libmcfs_graph.a"
  "libmcfs_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcfs_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
