# Empty dependencies file for mcfs_graph.
# This may be replaced when dependencies are built.
