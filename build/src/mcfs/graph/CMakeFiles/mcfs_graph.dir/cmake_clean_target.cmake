file(REMOVE_RECURSE
  "libmcfs_graph.a"
)
