
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mcfs/graph/alt_router.cc" "src/mcfs/graph/CMakeFiles/mcfs_graph.dir/alt_router.cc.o" "gcc" "src/mcfs/graph/CMakeFiles/mcfs_graph.dir/alt_router.cc.o.d"
  "/root/repo/src/mcfs/graph/contraction_hierarchy.cc" "src/mcfs/graph/CMakeFiles/mcfs_graph.dir/contraction_hierarchy.cc.o" "gcc" "src/mcfs/graph/CMakeFiles/mcfs_graph.dir/contraction_hierarchy.cc.o.d"
  "/root/repo/src/mcfs/graph/dijkstra.cc" "src/mcfs/graph/CMakeFiles/mcfs_graph.dir/dijkstra.cc.o" "gcc" "src/mcfs/graph/CMakeFiles/mcfs_graph.dir/dijkstra.cc.o.d"
  "/root/repo/src/mcfs/graph/facility_stream.cc" "src/mcfs/graph/CMakeFiles/mcfs_graph.dir/facility_stream.cc.o" "gcc" "src/mcfs/graph/CMakeFiles/mcfs_graph.dir/facility_stream.cc.o.d"
  "/root/repo/src/mcfs/graph/generators.cc" "src/mcfs/graph/CMakeFiles/mcfs_graph.dir/generators.cc.o" "gcc" "src/mcfs/graph/CMakeFiles/mcfs_graph.dir/generators.cc.o.d"
  "/root/repo/src/mcfs/graph/graph.cc" "src/mcfs/graph/CMakeFiles/mcfs_graph.dir/graph.cc.o" "gcc" "src/mcfs/graph/CMakeFiles/mcfs_graph.dir/graph.cc.o.d"
  "/root/repo/src/mcfs/graph/graph_io.cc" "src/mcfs/graph/CMakeFiles/mcfs_graph.dir/graph_io.cc.o" "gcc" "src/mcfs/graph/CMakeFiles/mcfs_graph.dir/graph_io.cc.o.d"
  "/root/repo/src/mcfs/graph/road_network.cc" "src/mcfs/graph/CMakeFiles/mcfs_graph.dir/road_network.cc.o" "gcc" "src/mcfs/graph/CMakeFiles/mcfs_graph.dir/road_network.cc.o.d"
  "/root/repo/src/mcfs/graph/spatial_index.cc" "src/mcfs/graph/CMakeFiles/mcfs_graph.dir/spatial_index.cc.o" "gcc" "src/mcfs/graph/CMakeFiles/mcfs_graph.dir/spatial_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mcfs/common/CMakeFiles/mcfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
