# Empty dependencies file for mcfs_flow.
# This may be replaced when dependencies are built.
