file(REMOVE_RECURSE
  "libmcfs_flow.a"
)
