file(REMOVE_RECURSE
  "CMakeFiles/mcfs_flow.dir/matcher.cc.o"
  "CMakeFiles/mcfs_flow.dir/matcher.cc.o.d"
  "CMakeFiles/mcfs_flow.dir/transport.cc.o"
  "CMakeFiles/mcfs_flow.dir/transport.cc.o.d"
  "libmcfs_flow.a"
  "libmcfs_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcfs_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
