file(REMOVE_RECURSE
  "CMakeFiles/mcfs_core.dir/dynamic.cc.o"
  "CMakeFiles/mcfs_core.dir/dynamic.cc.o.d"
  "CMakeFiles/mcfs_core.dir/instance.cc.o"
  "CMakeFiles/mcfs_core.dir/instance.cc.o.d"
  "CMakeFiles/mcfs_core.dir/instance_io.cc.o"
  "CMakeFiles/mcfs_core.dir/instance_io.cc.o.d"
  "CMakeFiles/mcfs_core.dir/local_search.cc.o"
  "CMakeFiles/mcfs_core.dir/local_search.cc.o.d"
  "CMakeFiles/mcfs_core.dir/repair.cc.o"
  "CMakeFiles/mcfs_core.dir/repair.cc.o.d"
  "CMakeFiles/mcfs_core.dir/set_cover.cc.o"
  "CMakeFiles/mcfs_core.dir/set_cover.cc.o.d"
  "CMakeFiles/mcfs_core.dir/solution_stats.cc.o"
  "CMakeFiles/mcfs_core.dir/solution_stats.cc.o.d"
  "CMakeFiles/mcfs_core.dir/wma.cc.o"
  "CMakeFiles/mcfs_core.dir/wma.cc.o.d"
  "libmcfs_core.a"
  "libmcfs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcfs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
