
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mcfs/core/dynamic.cc" "src/mcfs/core/CMakeFiles/mcfs_core.dir/dynamic.cc.o" "gcc" "src/mcfs/core/CMakeFiles/mcfs_core.dir/dynamic.cc.o.d"
  "/root/repo/src/mcfs/core/instance.cc" "src/mcfs/core/CMakeFiles/mcfs_core.dir/instance.cc.o" "gcc" "src/mcfs/core/CMakeFiles/mcfs_core.dir/instance.cc.o.d"
  "/root/repo/src/mcfs/core/instance_io.cc" "src/mcfs/core/CMakeFiles/mcfs_core.dir/instance_io.cc.o" "gcc" "src/mcfs/core/CMakeFiles/mcfs_core.dir/instance_io.cc.o.d"
  "/root/repo/src/mcfs/core/local_search.cc" "src/mcfs/core/CMakeFiles/mcfs_core.dir/local_search.cc.o" "gcc" "src/mcfs/core/CMakeFiles/mcfs_core.dir/local_search.cc.o.d"
  "/root/repo/src/mcfs/core/repair.cc" "src/mcfs/core/CMakeFiles/mcfs_core.dir/repair.cc.o" "gcc" "src/mcfs/core/CMakeFiles/mcfs_core.dir/repair.cc.o.d"
  "/root/repo/src/mcfs/core/set_cover.cc" "src/mcfs/core/CMakeFiles/mcfs_core.dir/set_cover.cc.o" "gcc" "src/mcfs/core/CMakeFiles/mcfs_core.dir/set_cover.cc.o.d"
  "/root/repo/src/mcfs/core/solution_stats.cc" "src/mcfs/core/CMakeFiles/mcfs_core.dir/solution_stats.cc.o" "gcc" "src/mcfs/core/CMakeFiles/mcfs_core.dir/solution_stats.cc.o.d"
  "/root/repo/src/mcfs/core/wma.cc" "src/mcfs/core/CMakeFiles/mcfs_core.dir/wma.cc.o" "gcc" "src/mcfs/core/CMakeFiles/mcfs_core.dir/wma.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mcfs/flow/CMakeFiles/mcfs_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/mcfs/graph/CMakeFiles/mcfs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/mcfs/common/CMakeFiles/mcfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
