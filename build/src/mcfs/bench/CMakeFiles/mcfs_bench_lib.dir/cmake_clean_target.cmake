file(REMOVE_RECURSE
  "libmcfs_bench_lib.a"
)
