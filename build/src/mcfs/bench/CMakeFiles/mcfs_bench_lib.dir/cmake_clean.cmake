file(REMOVE_RECURSE
  "CMakeFiles/mcfs_bench_lib.dir/runner.cc.o"
  "CMakeFiles/mcfs_bench_lib.dir/runner.cc.o.d"
  "libmcfs_bench_lib.a"
  "libmcfs_bench_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcfs_bench_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
