# Empty dependencies file for mcfs_bench_lib.
# This may be replaced when dependencies are built.
