# CMake generated Testfile for 
# Source directory: /root/repo/src/mcfs
# Build directory: /root/repo/build/src/mcfs
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("graph")
subdirs("hilbert")
subdirs("flow")
subdirs("core")
subdirs("baselines")
subdirs("exact")
subdirs("workload")
subdirs("bench")
