# Empty compiler generated dependencies file for mcfs_hilbert.
# This may be replaced when dependencies are built.
