file(REMOVE_RECURSE
  "CMakeFiles/mcfs_hilbert.dir/hilbert.cc.o"
  "CMakeFiles/mcfs_hilbert.dir/hilbert.cc.o.d"
  "libmcfs_hilbert.a"
  "libmcfs_hilbert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcfs_hilbert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
