file(REMOVE_RECURSE
  "libmcfs_hilbert.a"
)
