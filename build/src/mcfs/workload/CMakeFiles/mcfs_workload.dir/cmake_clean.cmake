file(REMOVE_RECURSE
  "CMakeFiles/mcfs_workload.dir/bike_sim.cc.o"
  "CMakeFiles/mcfs_workload.dir/bike_sim.cc.o.d"
  "CMakeFiles/mcfs_workload.dir/workload.cc.o"
  "CMakeFiles/mcfs_workload.dir/workload.cc.o.d"
  "CMakeFiles/mcfs_workload.dir/yelp_sim.cc.o"
  "CMakeFiles/mcfs_workload.dir/yelp_sim.cc.o.d"
  "libmcfs_workload.a"
  "libmcfs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcfs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
