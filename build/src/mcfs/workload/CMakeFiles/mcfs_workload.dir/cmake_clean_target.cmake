file(REMOVE_RECURSE
  "libmcfs_workload.a"
)
