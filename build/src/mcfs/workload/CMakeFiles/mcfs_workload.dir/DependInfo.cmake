
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mcfs/workload/bike_sim.cc" "src/mcfs/workload/CMakeFiles/mcfs_workload.dir/bike_sim.cc.o" "gcc" "src/mcfs/workload/CMakeFiles/mcfs_workload.dir/bike_sim.cc.o.d"
  "/root/repo/src/mcfs/workload/workload.cc" "src/mcfs/workload/CMakeFiles/mcfs_workload.dir/workload.cc.o" "gcc" "src/mcfs/workload/CMakeFiles/mcfs_workload.dir/workload.cc.o.d"
  "/root/repo/src/mcfs/workload/yelp_sim.cc" "src/mcfs/workload/CMakeFiles/mcfs_workload.dir/yelp_sim.cc.o" "gcc" "src/mcfs/workload/CMakeFiles/mcfs_workload.dir/yelp_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mcfs/graph/CMakeFiles/mcfs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/mcfs/common/CMakeFiles/mcfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
