# Empty compiler generated dependencies file for mcfs_workload.
# This may be replaced when dependencies are built.
