file(REMOVE_RECURSE
  "CMakeFiles/mcfs_exact.dir/bb_solver.cc.o"
  "CMakeFiles/mcfs_exact.dir/bb_solver.cc.o.d"
  "CMakeFiles/mcfs_exact.dir/distance_matrix.cc.o"
  "CMakeFiles/mcfs_exact.dir/distance_matrix.cc.o.d"
  "CMakeFiles/mcfs_exact.dir/lagrangian.cc.o"
  "CMakeFiles/mcfs_exact.dir/lagrangian.cc.o.d"
  "libmcfs_exact.a"
  "libmcfs_exact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcfs_exact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
