
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mcfs/exact/bb_solver.cc" "src/mcfs/exact/CMakeFiles/mcfs_exact.dir/bb_solver.cc.o" "gcc" "src/mcfs/exact/CMakeFiles/mcfs_exact.dir/bb_solver.cc.o.d"
  "/root/repo/src/mcfs/exact/distance_matrix.cc" "src/mcfs/exact/CMakeFiles/mcfs_exact.dir/distance_matrix.cc.o" "gcc" "src/mcfs/exact/CMakeFiles/mcfs_exact.dir/distance_matrix.cc.o.d"
  "/root/repo/src/mcfs/exact/lagrangian.cc" "src/mcfs/exact/CMakeFiles/mcfs_exact.dir/lagrangian.cc.o" "gcc" "src/mcfs/exact/CMakeFiles/mcfs_exact.dir/lagrangian.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mcfs/core/CMakeFiles/mcfs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mcfs/flow/CMakeFiles/mcfs_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/mcfs/graph/CMakeFiles/mcfs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/mcfs/common/CMakeFiles/mcfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
