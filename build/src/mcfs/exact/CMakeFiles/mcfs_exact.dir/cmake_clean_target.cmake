file(REMOVE_RECURSE
  "libmcfs_exact.a"
)
