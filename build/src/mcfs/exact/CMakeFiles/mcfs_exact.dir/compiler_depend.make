# Empty compiler generated dependencies file for mcfs_exact.
# This may be replaced when dependencies are built.
