# CMake generated Testfile for 
# Source directory: /root/repo/src/mcfs/exact
# Build directory: /root/repo/build/src/mcfs/exact
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
