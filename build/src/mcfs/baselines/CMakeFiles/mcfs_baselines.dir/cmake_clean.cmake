file(REMOVE_RECURSE
  "CMakeFiles/mcfs_baselines.dir/brnn.cc.o"
  "CMakeFiles/mcfs_baselines.dir/brnn.cc.o.d"
  "CMakeFiles/mcfs_baselines.dir/greedy_kmedian.cc.o"
  "CMakeFiles/mcfs_baselines.dir/greedy_kmedian.cc.o.d"
  "CMakeFiles/mcfs_baselines.dir/hilbert_baseline.cc.o"
  "CMakeFiles/mcfs_baselines.dir/hilbert_baseline.cc.o.d"
  "libmcfs_baselines.a"
  "libmcfs_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcfs_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
