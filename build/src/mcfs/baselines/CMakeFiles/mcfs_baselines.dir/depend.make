# Empty dependencies file for mcfs_baselines.
# This may be replaced when dependencies are built.
