file(REMOVE_RECURSE
  "libmcfs_baselines.a"
)
