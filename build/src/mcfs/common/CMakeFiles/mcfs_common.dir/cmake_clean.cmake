file(REMOVE_RECURSE
  "CMakeFiles/mcfs_common.dir/flags.cc.o"
  "CMakeFiles/mcfs_common.dir/flags.cc.o.d"
  "CMakeFiles/mcfs_common.dir/random.cc.o"
  "CMakeFiles/mcfs_common.dir/random.cc.o.d"
  "CMakeFiles/mcfs_common.dir/table.cc.o"
  "CMakeFiles/mcfs_common.dir/table.cc.o.d"
  "libmcfs_common.a"
  "libmcfs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcfs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
