# Empty compiler generated dependencies file for mcfs_common.
# This may be replaced when dependencies are built.
