file(REMOVE_RECURSE
  "libmcfs_common.a"
)
