file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_localsearch.dir/bench_ablation_localsearch.cc.o"
  "CMakeFiles/bench_ablation_localsearch.dir/bench_ablation_localsearch.cc.o.d"
  "bench_ablation_localsearch"
  "bench_ablation_localsearch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_localsearch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
