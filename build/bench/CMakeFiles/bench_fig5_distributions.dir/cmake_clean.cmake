file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_distributions.dir/bench_fig5_distributions.cc.o"
  "CMakeFiles/bench_fig5_distributions.dir/bench_fig5_distributions.cc.o.d"
  "bench_fig5_distributions"
  "bench_fig5_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
