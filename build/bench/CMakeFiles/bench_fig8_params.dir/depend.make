# Empty dependencies file for bench_fig8_params.
# This may be replaced when dependencies are built.
