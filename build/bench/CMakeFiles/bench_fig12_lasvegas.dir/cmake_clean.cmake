file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_lasvegas.dir/bench_fig12_lasvegas.cc.o"
  "CMakeFiles/bench_fig12_lasvegas.dir/bench_fig12_lasvegas.cc.o.d"
  "bench_fig12_lasvegas"
  "bench_fig12_lasvegas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_lasvegas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
