# Empty dependencies file for bench_fig12_lasvegas.
# This may be replaced when dependencies are built.
