# Empty dependencies file for bench_fig13_copenhagen.
# This may be replaced when dependencies are built.
