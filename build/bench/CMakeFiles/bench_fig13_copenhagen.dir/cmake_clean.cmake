file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_copenhagen.dir/bench_fig13_copenhagen.cc.o"
  "CMakeFiles/bench_fig13_copenhagen.dir/bench_fig13_copenhagen.cc.o.d"
  "bench_fig13_copenhagen"
  "bench_fig13_copenhagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_copenhagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
