file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_aalborg.dir/bench_fig10_aalborg.cc.o"
  "CMakeFiles/bench_fig10_aalborg.dir/bench_fig10_aalborg.cc.o.d"
  "bench_fig10_aalborg"
  "bench_fig10_aalborg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_aalborg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
