# Empty compiler generated dependencies file for bench_fig10_aalborg.
# This may be replaced when dependencies are built.
