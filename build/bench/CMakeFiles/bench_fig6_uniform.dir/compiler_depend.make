# Empty compiler generated dependencies file for bench_fig6_uniform.
# This may be replaced when dependencies are built.
