file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_density_capacity.dir/bench_fig9_density_capacity.cc.o"
  "CMakeFiles/bench_fig9_density_capacity.dir/bench_fig9_density_capacity.cc.o.d"
  "bench_fig9_density_capacity"
  "bench_fig9_density_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_density_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
