# Empty compiler generated dependencies file for bench_fig9_density_capacity.
# This may be replaced when dependencies are built.
