# Empty compiler generated dependencies file for bench_fig7_clustered.
# This may be replaced when dependencies are built.
