file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_clustered.dir/bench_fig7_clustered.cc.o"
  "CMakeFiles/bench_fig7_clustered.dir/bench_fig7_clustered.cc.o.d"
  "bench_fig7_clustered"
  "bench_fig7_clustered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_clustered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
