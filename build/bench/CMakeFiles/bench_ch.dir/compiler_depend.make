# Empty compiler generated dependencies file for bench_ch.
# This may be replaced when dependencies are built.
