file(REMOVE_RECURSE
  "CMakeFiles/bench_ch.dir/bench_ch.cc.o"
  "CMakeFiles/bench_ch.dir/bench_ch.cc.o.d"
  "bench_ch"
  "bench_ch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
