# Empty dependencies file for bench_table4_cities.
# This may be replaced when dependencies are built.
