file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_cities.dir/bench_table4_cities.cc.o"
  "CMakeFiles/bench_table4_cities.dir/bench_table4_cities.cc.o.d"
  "bench_table4_cities"
  "bench_table4_cities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_cities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
