
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_dynamic.cc" "bench/CMakeFiles/bench_dynamic.dir/bench_dynamic.cc.o" "gcc" "bench/CMakeFiles/bench_dynamic.dir/bench_dynamic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mcfs/bench/CMakeFiles/mcfs_bench_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/mcfs/exact/CMakeFiles/mcfs_exact.dir/DependInfo.cmake"
  "/root/repo/build/src/mcfs/baselines/CMakeFiles/mcfs_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/mcfs/workload/CMakeFiles/mcfs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/mcfs/core/CMakeFiles/mcfs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mcfs/flow/CMakeFiles/mcfs_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/mcfs/hilbert/CMakeFiles/mcfs_hilbert.dir/DependInfo.cmake"
  "/root/repo/build/src/mcfs/graph/CMakeFiles/mcfs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/mcfs/common/CMakeFiles/mcfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
