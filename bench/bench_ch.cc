// Substrate bench: Contraction Hierarchies vs plain Dijkstra and the
// ALT router on a city network — preprocessing cost, shortcut count,
// per-query settled nodes, and many-to-many distance-table throughput
// (the access pattern behind dense-matrix construction for the exact
// solver and the greedy k-median baseline).

#include <algorithm>

#include "bench/bench_util.h"
#include "mcfs/common/timer.h"
#include "mcfs/graph/alt_router.h"
#include "mcfs/graph/contraction_hierarchy.h"
#include "mcfs/graph/dijkstra.h"
#include "mcfs/graph/road_network.h"
#include "mcfs/workload/workload.h"

int main(int argc, char** argv) {
  using namespace mcfs;
  const Flags flags(argc, argv);
  const auto bench = bench_util::BenchConfig::FromFlags(flags, 0.05);
  bench_util::Banner("Substrate: CH vs ALT vs Dijkstra point-to-point",
                     bench);

  const Graph city = GenerateCity(AalborgPreset(bench.scale, bench.seed));
  std::printf("city: n=%d, edges=%lld\n", city.NumNodes(),
              static_cast<long long>(city.NumEdges()));

  double ch_prep = 0.0;
  ScopedTimer ch_prep_timer(&ch_prep, "bench/ch_preprocess_seconds");
  const ContractionHierarchy ch(&city);
  ch_prep_timer.Stop();

  double alt_prep = 0.0;
  ScopedTimer alt_prep_timer(&alt_prep, "bench/alt_preprocess_seconds");
  Rng rng(bench.seed + 1);
  AltRouter alt(&city, 8, rng);
  alt_prep_timer.Stop();

  const int queries = 200;
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (int q = 0; q < queries; ++q) {
    pairs.push_back(
        {static_cast<NodeId>(rng.UniformInt(0, city.NumNodes() - 1)),
         static_cast<NodeId>(rng.UniformInt(0, city.NumNodes() - 1))});
  }

  // Plain Dijkstra baseline (settles the whole component per query).
  double dijkstra_seconds = 0.0;
  double checksum_dijkstra = 0.0;
  {
    ScopedTimer t(&dijkstra_seconds, "bench/dijkstra_query_seconds");
    for (const auto& [s, t_node] : pairs) {
      const std::vector<double> dist = ShortestPathsFrom(city, s);
      if (dist[t_node] != kInfDistance) checksum_dijkstra += dist[t_node];
    }
  }

  double ch_seconds = 0.0;
  double checksum_ch = 0.0;
  int64_t ch_settled = 0;
  {
    ScopedTimer t(&ch_seconds, "bench/ch_query_seconds");
    for (const auto& [s, t_node] : pairs) {
      const double d = ch.Distance(s, t_node);
      if (d != kInfDistance) checksum_ch += d;
      ch_settled += ch.last_settled_count();
    }
  }

  double alt_seconds = 0.0;
  double checksum_alt = 0.0;
  int64_t alt_settled = 0;
  {
    ScopedTimer t(&alt_seconds, "bench/alt_query_seconds");
    for (const auto& [s, t_node] : pairs) {
      const double d = alt.Distance(s, t_node);
      if (d != kInfDistance) checksum_alt += d;
      alt_settled += alt.last_settled_count();
    }
  }

  MCFS_CHECK(std::abs(checksum_ch - checksum_dijkstra) <
             1e-6 * (1.0 + checksum_dijkstra))
      << "CH distances diverge from Dijkstra";
  MCFS_CHECK(std::abs(checksum_alt - checksum_dijkstra) <
             1e-6 * (1.0 + checksum_dijkstra))
      << "ALT distances diverge from Dijkstra";

  Table table({"method", "preprocessing", "200 queries",
               "avg settled/query", "exact"});
  table.AddRow({"Dijkstra", "-", FmtSeconds(dijkstra_seconds),
                FmtInt(city.NumNodes()), "yes"});
  table.AddRow({"ALT (8 landmarks)", FmtSeconds(alt_prep),
                FmtSeconds(alt_seconds), FmtInt(alt_settled / queries),
                "yes"});
  table.AddRow({"CH", FmtSeconds(ch_prep), FmtSeconds(ch_seconds),
                FmtInt(ch_settled / queries), "yes"});
  table.Print();
  std::printf("CH inserted %lld shortcuts (%.1f%% of original edges)\n",
              static_cast<long long>(ch.num_shortcuts()),
              100.0 * ch.num_shortcuts() / std::max<int64_t>(1, city.NumEdges()));

  // Many-to-many: 64 x 64 table, CH buckets vs repeated Dijkstra.
  const std::vector<NodeId> sources = SampleDistinctNodes(city, 64, rng);
  const std::vector<NodeId> targets = SampleDistinctNodes(city, 64, rng);
  double mtm_ch = 0.0;
  ScopedTimer mtm_ch_timer(&mtm_ch, "bench/ch_table_seconds");
  const std::vector<double> table_ch = ch.DistanceTable(sources, targets);
  mtm_ch_timer.Stop();
  double mtm_dijkstra = 0.0;
  double mtm_checksum = 0.0;
  {
    ScopedTimer t(&mtm_dijkstra, "bench/dijkstra_table_seconds");
    for (const NodeId s : sources) {
      const std::vector<double> dist = ShortestPathsFrom(city, s);
      for (const NodeId t_node : targets) {
        if (dist[t_node] != kInfDistance) mtm_checksum += dist[t_node];
      }
    }
  }
  double mtm_ch_checksum = 0.0;
  for (const double d : table_ch) {
    if (d != kInfDistance) mtm_ch_checksum += d;
  }
  MCFS_CHECK(std::abs(mtm_ch_checksum - mtm_checksum) <
             1e-6 * (1.0 + mtm_checksum));
  std::printf(
      "many-to-many 64x64: CH buckets %s vs per-source Dijkstra %s "
      "(%.1fx)\n",
      FmtSeconds(mtm_ch).c_str(), FmtSeconds(mtm_dijkstra).c_str(),
      mtm_dijkstra / std::max(mtm_ch, 1e-9));
  return 0;
}
