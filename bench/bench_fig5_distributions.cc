// Reproduces Figure 5: example point distributions used to generate the
// synthetic networks — a uniform scatter and clustered scatters with
// 40, 20 and 5 clusters on the 10^3 x 10^3 square. The paper shows
// scatter plots; we report their summary statistics (and optionally
// dump the points as CSV for plotting with --dump_prefix=PATH).

#include <cmath>
#include <fstream>

#include "bench/bench_util.h"
#include "mcfs/graph/dijkstra.h"
#include "mcfs/graph/generators.h"

namespace mcfs {
namespace {

// Mean distance of a point to the overall centroid: uniform data on the
// unit square yields ~0.3825 * side; clustering reduces within-cluster
// spread, which we report via mean nearest-neighbor distance instead.
double MeanNearestNeighborDistance(const std::vector<Point>& points) {
  double total = 0.0;
  // O(n^2) is fine at the figure's 10^4 points (scaled down by default).
  for (size_t i = 0; i < points.size(); ++i) {
    double best = kInfDistance;
    for (size_t j = 0; j < points.size(); ++j) {
      if (i == j) continue;
      best = std::min(best, EuclideanDistance(points[i], points[j]));
    }
    total += best;
  }
  return total / points.size();
}

void MaybeDump(const std::vector<Point>& points, const std::string& prefix,
               const std::string& name) {
  if (prefix.empty()) return;
  std::ofstream out(prefix + name + ".csv");
  out << "x,y\n";
  for (const Point& p : points) out << p.x << ',' << p.y << '\n';
}

}  // namespace
}  // namespace mcfs

int main(int argc, char** argv) {
  using namespace mcfs;
  const Flags flags(argc, argv);
  const auto bench = bench_util::BenchConfig::FromFlags(flags, 0.2);
  bench_util::Banner("Figure 5: synthetic point distributions", bench);
  const int n = std::max(200, static_cast<int>(10000 * bench.scale));
  const std::string dump_prefix = flags.GetString("dump_prefix", "");

  Table table({"distribution", "points", "mean NN distance",
               "resulting avg degree (alpha=2)"});
  for (const int clusters : {40, 20, 5, 0}) {
    Rng rng(bench.seed + clusters);
    std::vector<Point> points;
    std::string name;
    if (clusters == 0) {
      points = GenerateUniformPoints(n, 1000.0, rng);
      name = "uniform";
    } else {
      const double sigma = 0.5 * 1000.0 * std::sqrt(1.0 / clusters);
      points = GenerateClusteredPoints(n, clusters, 1000.0, sigma, rng);
      name = std::to_string(clusters) + " clusters";
    }
    SyntheticNetworkOptions options;
    options.num_nodes = n;
    options.alpha = 2.0;
    options.num_clusters = clusters;
    options.seed = bench.seed + clusters;
    const Graph graph = GenerateSyntheticNetwork(options);
    table.AddRow({name, FmtInt(n),
                  FmtDouble(MeanNearestNeighborDistance(points), 2),
                  FmtDouble(graph.AverageDegree(), 2)});
    MaybeDump(points, dump_prefix, "_" + std::to_string(clusters));
  }
  table.Print();
  return 0;
}
