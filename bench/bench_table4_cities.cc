// Reproduces Table IV: the four city networks with uniform capacities,
// m = 512 customers, k = 51 facilities, c = 20, F_p = V (every node a
// candidate). The paper reports objective / runtime for BRNN, Hilbert,
// WMA Naive and WMA; Gurobi never terminates at this candidate-set size
// — and neither does our exact solver, by design.
//
// Expected shape (paper): WMA best everywhere, ~30% better than Hilbert
// on organic European networks but only ~9% better on grid-like Las
// Vegas, where clustering approaches do well; BRNN is far worse.

#include <algorithm>

#include "bench/bench_util.h"
#include "mcfs/graph/road_network.h"
#include "mcfs/workload/workload.h"

int main(int argc, char** argv) {
  using namespace mcfs;
  const Flags flags(argc, argv);
  const auto bench = bench_util::BenchConfig::FromFlags(flags, 0.04);
  bench_util::Banner(
      "Table IV: city networks, m=512, k=51, c=20, l=n (scaled)", bench);

  const CityOptions presets[] = {
      AalborgPreset(bench.scale, bench.seed),
      RigaPreset(bench.scale, bench.seed + 1),
      CopenhagenPreset(bench.scale, bench.seed + 2),
      LasVegasPreset(bench.scale, bench.seed + 3),
  };
  // Customers/facilities scale with sqrt(scale) so density stays sane.
  const int m = std::max(32, static_cast<int>(512 * std::min(1.0, 4 * bench.scale)));
  const int k = std::max(4, m / 10);

  bench_util::SweepTable table("city");
  for (const CityOptions& preset : presets) {
    const Graph city = GenerateCity(preset);
    Rng rng(bench.seed + 17);
    McfsInstance instance;
    instance.graph = &city;
    instance.customers = SampleDistinctNodes(city, m, rng);
    instance.facility_nodes =
        SampleDistinctNodes(city, city.NumNodes(), rng);  // F_p = V
    instance.capacities = UniformCapacities(city.NumNodes(), 20);
    instance.k = k;

    AlgorithmSuite suite = bench_util::MakeSuite(bench);
    suite.with_brnn = true;
    suite.with_exact = false;  // Gurobi "did not terminate within a week"
    table.Add(preset.name, RunSuite(instance, suite));
  }
  table.PrintAndMaybeSave(flags);
  std::printf(
      "(the exact reference is omitted: at l = n it exceeds any practical "
      "budget, as Gurobi does in the paper)\n");
  return 0;
}
