// Reproduces Figure 10: scalability on the Aalborg network for growing
// customer/facility counts at fixed occupancy o = 0.5 (c = 20,
// k = 0.1 m, l = n).
//
// Expected shape (paper): WMA's quality advantage over Hilbert grows
// with problem size; WMA Naive is close in runtime but worse in
// objective; BRNN's objective and runtime blow up; the exact solver
// fails at every point.

#include <algorithm>

#include "bench/bench_util.h"
#include "mcfs/graph/road_network.h"
#include "mcfs/workload/workload.h"

int main(int argc, char** argv) {
  using namespace mcfs;
  const Flags flags(argc, argv);
  const auto bench = bench_util::BenchConfig::FromFlags(flags, 0.08);
  bench_util::Banner("Figure 10: Aalborg scalability, o = 0.5, l = n",
                     bench);

  const Graph city = GenerateCity(AalborgPreset(bench.scale, bench.seed));
  std::printf("Aalborg (scaled): n=%d, edges=%lld\n", city.NumNodes(),
              static_cast<long long>(city.NumEdges()));

  bench_util::SweepTable table("m");
  for (const int base_m : {64, 128, 256, 512}) {
    const int m = std::min(base_m, city.NumNodes() / 4);
    Rng rng(bench.seed + base_m);
    McfsInstance instance;
    instance.graph = &city;
    instance.customers = SampleDistinctNodes(city, m, rng);
    instance.facility_nodes =
        SampleDistinctNodes(city, city.NumNodes(), rng);
    instance.capacities = UniformCapacities(city.NumNodes(), 20);
    instance.k = std::max(1, m / 10);

    AlgorithmSuite suite = bench_util::MakeSuite(bench);
    suite.with_brnn = base_m <= 128;  // BRNN becomes impractical beyond
    suite.with_exact = false;
    table.Add(FmtInt(m), RunSuite(instance, suite));
  }
  table.PrintAndMaybeSave(flags);
  return 0;
}
