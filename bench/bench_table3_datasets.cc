// Reproduces Table III: structural statistics of the four city road
// networks. The paper uses OpenStreetMap exports; we use the synthetic
// road-network generator calibrated to the same statistics (DESIGN.md
// §2.1). At --scale=1 the node counts match the paper's; the default
// scale keeps the suite fast while preserving degrees and edge lengths.

#include "bench/bench_util.h"
#include "mcfs/graph/road_network.h"

int main(int argc, char** argv) {
  using namespace mcfs;
  const Flags flags(argc, argv);
  const auto bench = bench_util::BenchConfig::FromFlags(flags, 0.05);
  bench_util::Banner("Table III: real-world (simulated) data sets", bench);

  Table table({"city", "nodes", "edges", "avg degree", "max degree",
               "avg edge length (m)", "paper nodes", "paper avg deg",
               "paper edge len"});
  struct Row {
    CityOptions options;
    int paper_nodes;
    double paper_degree;
    double paper_edge_length;
  };
  const Row rows[] = {
      {AalborgPreset(bench.scale, bench.seed), 50961, 2.2, 30.2},
      {RigaPreset(bench.scale, bench.seed + 1), 287927, 2.2, 28.7},
      {CopenhagenPreset(bench.scale, bench.seed + 2), 282826, 2.2, 32.6},
      {LasVegasPreset(bench.scale, bench.seed + 3), 425759, 2.4, 50.4},
  };
  for (const Row& row : rows) {
    const Graph city = GenerateCity(row.options);
    table.AddRow({row.options.name, FmtInt(city.NumNodes()),
                  FmtInt(city.NumEdges()),
                  FmtDouble(city.AverageDegree(), 2),
                  FmtInt(city.MaxDegree()),
                  FmtDouble(city.AverageEdgeLength(), 1),
                  FmtInt(row.paper_nodes), FmtDouble(row.paper_degree, 1),
                  FmtDouble(row.paper_edge_length, 1)});
  }
  table.Print();
  return 0;
}
