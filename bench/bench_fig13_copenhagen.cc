// Reproduces Figure 13: the Copenhagen applications.
//  (a) coworking with l = 164 venues and m = 200 coworkers (the paper's
//      actual sizes — small enough to run unscaled);
//  (b) dockless bike sharing: candidate docking stations with skewed
//      capacities and bikes placed by the divergence-variance demand
//      model.
//
// Expected shape (paper): WMA and UF WMA track the exact optimum (UF
// slightly worse on bikes); Hilbert and BRNN trail; the exact solver's
// runtime is orders of magnitude above WMA's.

#include <algorithm>

#include "bench/bench_util.h"
#include "mcfs/graph/road_network.h"
#include "mcfs/workload/bike_sim.h"
#include "mcfs/workload/workload.h"
#include "mcfs/workload/yelp_sim.h"

int main(int argc, char** argv) {
  using namespace mcfs;
  const Flags flags(argc, argv);
  auto bench = bench_util::BenchConfig::FromFlags(flags, 0.02);
  // The paper's exact reference (Gurobi) solves these small-l instances;
  // give our B&B a longer leash than the suite default.
  if (!flags.Has("exact_seconds")) bench.exact_seconds = 90.0;
  bench_util::Banner("Figure 13: Copenhagen coworking & dockless bikes",
                     bench);

  const Graph city =
      GenerateCity(CopenhagenPreset(bench.scale, bench.seed));
  std::printf("Copenhagen (scaled): n=%d\n", city.NumNodes());

  // --- Fig 13a: coworking, paper-size candidate set ---
  {
    YelpSimOptions yelp;
    yelp.num_venues = std::min(164, city.NumNodes() / 8);
    yelp.num_customers = 200;
    yelp.seed = bench.seed + 2;
    const CoworkingScenario scenario = GenerateCoworkingScenario(city, yelp);
    McfsInstance instance;
    instance.graph = &city;
    // The paper's Copenhagen setup draws customers proportionally to
    // district populations (unlike Las Vegas' occupancy formula).
    Rng district_rng(bench.seed + 5);
    instance.customers = PlaceCustomersByDistricts(
        city, yelp.num_customers, 10, district_rng);
    instance.facility_nodes = scenario.venues;
    instance.capacities = scenario.capacities;

    std::printf("\n--- Fig 13a: coworking, l=%d venues, m=%d ---\n",
                static_cast<int>(scenario.venues.size()),
                static_cast<int>(instance.customers.size()));
    bench_util::SweepTable table("k");
    for (const double fraction : {0.2, 0.3, 0.4, 0.5}) {
      instance.k = std::max(
          2, static_cast<int>(scenario.venues.size() * fraction));
      AlgorithmSuite suite = bench_util::MakeSuite(bench);
      suite.with_brnn = true;
      suite.with_uf_wma = true;
      suite.with_wma_ls = true;
      suite.with_greedy_kmedian = true;
      table.Add(FmtInt(instance.k), RunSuite(instance, suite));
    }
    table.PrintAndMaybeSave(flags);
  }

  // --- Fig 13b: dockless bike docking stations ---
  {
    BikeSimOptions bikes;
    bikes.num_stations =
        std::min(city.NumNodes() / 6,
                 std::max(100, static_cast<int>(6000 * bench.scale * 4)));
    bikes.num_bikes = std::max(150, static_cast<int>(1000 * bench.scale * 8));
    bikes.seed = bench.seed + 3;
    const BikeScenario scenario = GenerateBikeScenario(city, bikes);
    McfsInstance instance;
    instance.graph = &city;
    instance.customers = scenario.bikes;
    instance.facility_nodes = scenario.stations;
    instance.capacities = scenario.capacities;

    std::printf("\n--- Fig 13b: bike docking, l=%d stations, m=%d bikes ---\n",
                static_cast<int>(scenario.stations.size()),
                static_cast<int>(scenario.bikes.size()));
    bench_util::SweepTable table("k");
    for (const double fraction : {0.15, 0.25, 0.35}) {
      instance.k = std::max(
          2, static_cast<int>(scenario.stations.size() * fraction));
      AlgorithmSuite suite = bench_util::MakeSuite(bench);
      suite.with_uf_wma = true;
      suite.with_wma_ls = true;
      suite.with_greedy_kmedian = true;
      table.Add(FmtInt(instance.k), RunSuite(instance, suite));
    }
    table.PrintAndMaybeSave(flags);
  }
  return 0;
}
