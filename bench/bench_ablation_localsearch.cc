// Ablation: swap-based local-search polishing after each algorithm.
// Quantifies how much of the gap to the exact optimum the local search
// (an extension beyond the paper) recovers when started from WMA,
// WMA Naive, and Hilbert solutions.

#include "bench/bench_util.h"
#include "mcfs/baselines/hilbert_baseline.h"
#include "mcfs/common/timer.h"
#include "mcfs/core/local_search.h"
#include "mcfs/core/wma.h"
#include "mcfs/exact/bb_solver.h"
#include "mcfs/graph/generators.h"
#include "mcfs/workload/workload.h"

int main(int argc, char** argv) {
  using namespace mcfs;
  const Flags flags(argc, argv);
  const auto bench = bench_util::BenchConfig::FromFlags(flags, 1.0);
  bench_util::Banner("Ablation: local-search polishing", bench);

  Table table({"start", "seed", "objective", "polished", "improvement",
               "swaps", "vs exact"});
  for (int trial = 0; trial < 3; ++trial) {
    const uint64_t seed = bench.seed + trial;
    SyntheticNetworkOptions graph_options;
    graph_options.num_nodes = 1024;
    graph_options.alpha = 1.5;
    graph_options.num_clusters = 10;
    graph_options.seed = seed + 99;
    const Graph graph = GenerateSyntheticNetwork(graph_options);
    auto build = [&](uint64_t s) {
      Rng rng(s);
      McfsInstance instance;
      instance.graph = &graph;
      instance.customers = SampleDistinctNodes(graph, 100, rng);
      instance.facility_nodes =
          SampleDistinctNodes(graph, graph.NumNodes(), rng);
      instance.capacities = UniformCapacities(graph.NumNodes(), 10);
      instance.k = 20;
      return instance;
    };
    const McfsInstance instance =
        bench_util::BuildFeasibleInstance(build, seed + 100);

    ExactOptions exact_options;
    exact_options.time_limit_seconds = bench.exact_seconds;
    const ExactResult exact = SolveExact(instance, exact_options);
    const bool have_exact = !exact.failed && exact.solution.feasible;

    struct Start {
      const char* name;
      McfsSolution solution;
    };
    WmaOptions wma_options;
    wma_options.matcher = bench.matcher;
    WmaOptions naive_options = wma_options;
    naive_options.naive = true;
    const Start starts[] = {
        {"WMA", RunWma(instance, wma_options).solution},
        {"WMA Naive", RunWma(instance, naive_options).solution},
        {"Hilbert", RunHilbertBaseline(instance, bench.matcher)},
    };
    LocalSearchOptions ls_options;
    ls_options.matcher = bench.matcher;
    for (const Start& start : starts) {
      const LocalSearchResult polished =
          ImproveByLocalSearch(instance, start.solution, ls_options);
      const double gain =
          start.solution.objective - polished.solution.objective;
      table.AddRow(
          {start.name, FmtInt(seed), FmtDouble(start.solution.objective, 1),
           FmtDouble(polished.solution.objective, 1),
           FmtDouble(100.0 * gain /
                         std::max(start.solution.objective, 1e-9),
                     1) +
               "%",
           FmtInt(polished.swaps_applied),
           have_exact ? FmtDouble(polished.solution.objective /
                                      exact.solution.objective,
                                  2) +
                            "x"
                      : "-"});
    }
  }
  table.Print();
  return 0;
}
