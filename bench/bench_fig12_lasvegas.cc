// Reproduces Figure 12: the Las Vegas coworking application.
//  (a) nonuniform capacities (operating hours), l << n candidate venues
//      from the Yelp-style occupancy simulation; objective and runtime
//      across k for Direct WMA, UF WMA, Hilbert, BRNN, WMA Naive, and
//      the exact reference (feasible here because l is small).
//  (b) WMA operation statistics at large k: covered customers per
//      iteration, matching time, and set-cover time.
//
// Expected shape (paper): WMA and UF WMA match the exact objective at a
// fraction of its runtime; Hilbert cannot adapt to the small candidate
// set; most customers get covered within the first few iterations and
// the first iteration's matching dominates the per-iteration cost.

#include <algorithm>

#include "bench/bench_util.h"
#include "mcfs/core/wma.h"
#include "mcfs/graph/road_network.h"
#include "mcfs/workload/yelp_sim.h"

int main(int argc, char** argv) {
  using namespace mcfs;
  const Flags flags(argc, argv);
  const auto bench = bench_util::BenchConfig::FromFlags(flags, 0.04);
  bench_util::Banner("Figure 12: Las Vegas coworking (Yelp simulation)",
                     bench);

  const Graph city = GenerateCity(LasVegasPreset(bench.scale, bench.seed));
  YelpSimOptions yelp;
  yelp.num_venues =
      std::min(city.NumNodes() / 4,
               std::max(60, static_cast<int>(4089 * bench.scale * 2)));
  yelp.num_customers = std::max(100, static_cast<int>(1000 * bench.scale * 8));
  yelp.seed = bench.seed + 1;
  const CoworkingScenario scenario = GenerateCoworkingScenario(city, yelp);
  std::printf("city n=%d, venues l=%d, coworkers m=%d\n", city.NumNodes(),
              static_cast<int>(scenario.venues.size()),
              static_cast<int>(scenario.customers.size()));

  McfsInstance instance;
  instance.graph = &city;
  instance.customers = scenario.customers;
  instance.facility_nodes = scenario.venues;
  instance.capacities = scenario.capacities;

  // --- Fig 12a: objective / runtime across k ---
  bench_util::SweepTable table("k");
  const int max_k = static_cast<int>(scenario.venues.size());
  for (const double fraction : {0.20, 0.30, 0.40, 0.50}) {
    instance.k = std::max(2, static_cast<int>(max_k * fraction));
    AlgorithmSuite suite = bench_util::MakeSuite(bench);
    suite.with_brnn = true;
    suite.with_uf_wma = true;
    suite.with_wma_ls = true;
    suite.with_greedy_kmedian = true;
    table.Add(FmtInt(instance.k), RunSuite(instance, suite));
  }
  table.PrintAndMaybeSave(flags);

  // --- Fig 12b: WMA iteration statistics at large k ---
  instance.k = std::max(2, static_cast<int>(max_k * 0.20));
  WmaOptions options;
  options.collect_iteration_stats = true;
  options.seed = bench.seed;
  const WmaResult result = RunWma(instance, options);
  std::printf("\n--- Fig 12b: WMA per-iteration statistics (k=%d) ---\n",
              instance.k);
  Table stats({"iteration", "covered customers", "matching time",
               "set-cover time"});
  for (const WmaIterationStats& it : result.stats.per_iteration) {
    stats.AddRow({FmtInt(it.iteration), FmtInt(it.covered_customers),
                  FmtSeconds(it.matching_seconds),
                  FmtSeconds(it.cover_seconds)});
  }
  stats.Print();
  std::printf("final objective: %s (feasible=%d)\n",
              FmtDouble(result.solution.objective, 1).c_str(),
              result.solution.feasible ? 1 : 0);
  return 0;
}
