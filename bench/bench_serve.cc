// Serving bench: a closed-loop load generator against the long-lived
// SolverService. Pre-generates a mix of solve requests on one city
// network, then measures:
//   * direct — every request as its own SolveWma call (cold path: each
//     one re-pays instance validation's component scan);
//   * service — the same requests through SolverService (`--clients`
//     closed-loop threads, bounded queue, batching), reporting
//     requests/sec and p50/p99 latency from the service report.
// Every service response is cross-checked bit-identical to its direct
// reference; the structured service report lands in
// --service-report-out for the CI schema check.
//
// Knobs: --requests, --repeat (duplicates the mix to exercise the
// epoch cache), --clients, --serve-threads, --queue-depth, --max-batch,
// --deadline-ms, --verify, plus the standard --scale / --seed.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "mcfs/common/timer.h"
#include "mcfs/graph/road_network.h"
#include "mcfs/serve/solver_service.h"
#include "mcfs/workload/workload.h"

int main(int argc, char** argv) {
  using namespace mcfs;
  const Flags flags(argc, argv);
  const auto bench = bench_util::BenchConfig::FromFlags(flags, 0.04);
  bench_util::Banner("Serving: SolverService closed-loop load", bench);

  const Graph city = GenerateCity(AalborgPreset(bench.scale, bench.seed));
  Rng rng(bench.seed + 1);
  const int l = std::min(city.NumNodes() / 8, 300);
  const std::vector<NodeId> facilities = SampleDistinctNodes(city, l, rng);
  const std::vector<int> capacities = UniformCapacities(l, 10);
  const int k = l / 4;

  const int unique_requests = static_cast<int>(flags.GetInt("requests", 24));
  const int repeat = static_cast<int>(flags.GetInt("repeat", 2));
  const int clients = static_cast<int>(flags.GetInt("clients", 4));

  ServiceOptions options;
  options.serve_threads =
      static_cast<int>(flags.GetInt("serve-threads", bench.threads));
  options.queue_depth = static_cast<int>(flags.GetInt("queue-depth", 64));
  options.max_batch = static_cast<int>(flags.GetInt("max-batch", 8));
  options.default_deadline_ms = bench.deadline_ms;
  options.verify = bench.verify;

  // The request mix: varying customer counts around an occupancy the
  // instances stay feasible at, repeated `repeat` times so the service
  // path also shows cache amortization.
  std::vector<SolveRequest> mix;
  for (int r = 0; r < unique_requests; ++r) {
    const int m = 40 + 20 * (r % 5);
    SolveRequest request;
    request.customers = SampleNodesWithReplacement(city, m, rng);
    request.k = k;
    mix.push_back(std::move(request));
  }
  std::vector<SolveRequest> requests;
  for (int rep = 0; rep < std::max(1, repeat); ++rep) {
    requests.insert(requests.end(), mix.begin(), mix.end());
  }
  const int n = static_cast<int>(requests.size());
  std::printf("city n=%d, l=%d candidates, k=%d; %d requests "
              "(%d unique x %d), %d clients\n",
              city.NumNodes(), l, k, n, unique_requests, repeat, clients);

  // --- direct (cold) reference ---
  std::vector<McfsSolution> reference(n);
  WallTimer timer;
  for (int r = 0; r < n; ++r) {
    McfsInstance instance;
    instance.graph = &city;
    instance.customers = requests[r].customers;
    instance.facility_nodes = facilities;
    instance.capacities = capacities;
    instance.k = requests[r].k;
    StatusOr<WmaResult> direct = SolveWma(instance);
    if (!direct.ok()) {
      std::printf("direct solve %d failed: %s\n", r,
                  direct.status().ToString().c_str());
      return 1;
    }
    reference[r] = std::move(direct).value().solution;
  }
  const double direct_seconds = timer.Seconds();

  // --- service (warm) path: closed-loop clients over a shared index ---
  SolverService service(&city, facilities, capacities, options);
  std::vector<SolveResponse> responses(n);
  std::atomic<int> next{0};
  timer.Restart();
  std::vector<std::thread> workers;
  for (int c = 0; c < std::max(1, clients); ++c) {
    workers.emplace_back([&] {
      for (int r = next.fetch_add(1); r < n; r = next.fetch_add(1)) {
        responses[r] = service.SolveSync(requests[r]);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double service_seconds = timer.Seconds();

  int mismatches = 0;
  for (int r = 0; r < n; ++r) {
    const SolveResponse& response = responses[r];
    if (!response.status.ok() ||
        response.solution.selected != reference[r].selected ||
        response.solution.assignment != reference[r].assignment ||
        response.solution.objective != reference[r].objective ||
        (response.verify_ran && !response.verify_ok)) {
      ++mismatches;
      std::printf("MISMATCH on request %d: %s\n", r,
                  response.status.ToString().c_str());
    }
  }

  const ServiceReport report = service.Report();
  Table table({"path", "requests", "total", "req/s", "p50", "p99"});
  table.AddRow({"direct (cold)", FmtInt(n), FmtSeconds(direct_seconds),
                FmtDouble(n / direct_seconds, 1), "-", "-"});
  table.AddRow({"service (warm)", FmtInt(n), FmtSeconds(service_seconds),
                FmtDouble(n / service_seconds, 1),
                FmtSeconds(report.latency.p50),
                FmtSeconds(report.latency.p99)});
  table.Print();
  std::printf(
      "warm state: %lld build(s) in %s; per-request preprocess %s vs "
      "cold %s; %lld cache hits, %lld batches (max %d)\n",
      static_cast<long long>(report.epochs_built),
      FmtSeconds(report.warm_build_seconds).c_str(),
      FmtSeconds(report.requests_completed == 0
                     ? 0.0
                     : report.preprocess_seconds_total /
                           report.requests_completed)
          .c_str(),
      FmtSeconds(report.epochs_built == 0
                     ? 0.0
                     : report.warm_build_seconds / report.epochs_built)
          .c_str(),
      static_cast<long long>(report.cache_hits),
      static_cast<long long>(report.batches), report.max_batch_size);

  const std::string service_report_out =
      flags.GetString("service-report-out",
                      flags.GetString("service_report_out",
                                      "service_report.json"));
  if (!service_report_out.empty() &&
      report.WriteJson(service_report_out)) {
    std::printf("(service report written to %s)\n",
                service_report_out.c_str());
  }
  bench_util::FlushArtifacts(flags);

  if (mismatches > 0) {
    std::printf("%d response(s) diverged from the direct reference\n",
                mismatches);
    return 1;
  }
  return 0;
}
