// Serving bench: a closed-loop load generator against the long-lived
// SolverService. Pre-generates a mix of solve requests on one city
// network, then measures:
//   * direct — every request as its own SolveWma call (cold path: each
//     one re-pays instance validation's component scan);
//   * service — the same requests through SolverService (`--clients`
//     closed-loop threads, bounded queue, batching), reporting
//     requests/sec and p50/p99 latency from the service report.
// Every service response is cross-checked bit-identical to its direct
// reference; the structured service report lands in
// --service-report-out for the CI schema check.
//
// Knobs: --requests, --repeat (duplicates the mix to exercise the
// epoch cache), --clients, --serve-threads, --queue-depth, --max-batch,
// --deadline-ms, --verify, plus the standard --scale / --seed.
//
// Observability (DESIGN.md §4.11): --introspect-every-ms N samples
// SolverService::DebugSnapshot() every N ms during the load phase and
// writes one JSON line per sample to --introspect-out (always at least
// one line — a final snapshot lands after the load drains). --slo-ms /
// --slo-error-budget configure a "default" latency SLO tier whose burn
// shows up in the service report. --postmortem-out PATH runs a
// deterministic failure probe after the load: a tiny service whose
// solves expire on a seeded Deadline::AfterPolls budget, so a tracked
// resolve deadline-terminates and auto-dumps a flight-recorder
// postmortem to PATH (the JSON CI validates).
//
// Fault tolerance (DESIGN.md §4.13): --fault-plan "seed=42,
// deadline_cut=0.1,..." installs a seeded deterministic fault schedule
// in the service; --allow-degraded (default on when a plan is set) opts
// requests into degraded-mode answers. Clients retry kUnavailable
// rejections with jittered exponential backoff (--backoff-base-ms /
// --backoff-max-ms / --max-retries), floored at the server's
// retry_after_ms hint, and the outcome table classifies every request
// as converged / degraded / deadline-cut / shed / failed.
// --checkpoint-path PATH saves a warm-state checkpoint after the load
// and restores it into a fresh service (the simulated restart), gating
// on epoch continuity. --restore-from PATH adopts a checkpoint written
// by an earlier process before taking load — the recovery half of the
// save -> kill -> restore drill CI runs under ASan.
//
// Tiered serving (DESIGN.md §4.14): --fast-latency-ms N puts every
// other request under an N ms SLA (answered by the instant responder as
// tier "fast", refined in the background). The run gains per-tier p50 /
// p99 table rows and a "fast" SLO row, and gates on the tier contract:
// fast p99 at least 10x under the converged tier's p99, zero verifier
// rejections on fast answers, and — after DrainRefinements — every
// refine-opted identity's cache entry upgraded in place (same key, same
// epoch, the planting trace id).
//
// Churn mode (--churn): replays hourly bike_sim deltas against one
// long-lived service — per epoch, ~--churn-rate of the tracked bikes
// depart/arrive, a few station capacities shift, and occasionally a
// station closes while another opens. Each epoch is re-solved twice:
// warm (ResolveTracked repairing the previous epoch's matching) and
// cold (direct SolveWma on the same instance), gated on exactly equal
// objectives, with the warm-vs-cold speedup and repair-fraction curves
// written to --resolve-report-out (default BENCH_resolve.json). One
// designated epoch applies an empty delta to pin the best case.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "mcfs/common/fault_plan.h"
#include "mcfs/common/timer.h"
#include "mcfs/graph/road_network.h"
#include "mcfs/serve/checkpoint.h"
#include "mcfs/serve/solver_service.h"
#include "mcfs/workload/bike_sim.h"
#include "mcfs/workload/workload.h"

namespace mcfs {
namespace {

struct ChurnEpoch {
  int epoch = 0;
  bool empty_delta = false;
  int ops = 0;
  int components_dirtied = 0;
  int customers = 0;
  double warm_seconds = 0.0;
  double cold_seconds = 0.0;
  double speedup = 0.0;
  double objective = 0.0;
  double repair_fraction = 0.0;  // repaired / (reused + repaired)
  int64_t warm_customers_reused = 0;
  int64_t warm_customers_repaired = 0;
  bool warm_final_resumed = false;
  // The solve actually ran the warm repair path. False on epoch 0 (no
  // seed yet) and on any epoch whose warm attempt fell back cold
  // (verifier rejection): those rows must not enter the warm-speedup
  // statistics, whatever the epoch number says.
  bool warm_served = false;
  bool objective_match = false;
  bool verify_ok = false;
};

double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

int RunChurnBench(const Flags& flags, const bench_util::BenchConfig& bench) {
  const Graph city = GenerateCity(AalborgPreset(bench.scale, bench.seed));

  BikeSimOptions sim;
  sim.seed = bench.seed;
  sim.num_stations = std::max(
      24, std::min(city.NumNodes() / 6,
                   static_cast<int>(600 * std::max(bench.scale, 0.05))));
  sim.num_bikes = std::max(
      60, static_cast<int>(flags.GetInt(
              "bikes", static_cast<int64_t>(500 * std::max(bench.scale,
                                                           0.15)))));
  const BikeScenario scenario = GenerateBikeScenario(city, sim);
  const int l = static_cast<int>(scenario.stations.size());
  // Smallest budget (plus slack for capacity-decrease deltas) that keeps
  // the docking instance feasible for the whole replay.
  int k = std::max(2, l / 3);
  for (; k < l; ++k) {
    McfsInstance probe;
    probe.graph = &city;
    probe.customers = scenario.bikes;
    probe.facility_nodes = scenario.stations;
    probe.capacities = scenario.capacities;
    probe.k = k;
    if (IsFeasible(probe)) break;
  }
  k = std::min(l, k + 2);

  const int epochs = static_cast<int>(flags.GetInt("epochs", 12));
  const double churn_rate = flags.GetDouble("churn-rate", 0.05);
  // Epoch 0 is the cold warm-up (no seed exists yet); epoch 1 applies
  // the designated empty delta so the report pins the best case.
  const int empty_delta_epoch = epochs >= 2 ? 1 : -1;

  ServiceOptions options;
  options.serve_threads =
      static_cast<int>(flags.GetInt("serve-threads", bench.threads));
  options.wma.threads = bench.threads;
  options.wma.metrics = bench.metrics;
  options.wma.matcher = bench.matcher;
  SolverService service(&city, scenario.stations, scenario.capacities,
                        options);

  // Initial bike population, one arrival op per bike.
  {
    UpdateRequest arrivals;
    for (const NodeId bike : scenario.bikes) {
      arrivals.ops.push_back({UpdateKind::kCustomerArrive, bike, 0});
    }
    const StatusOr<UpdateResult> applied = service.ApplyUpdate(arrivals);
    if (!applied.ok()) {
      std::printf("initial arrivals rejected: %s\n",
                  applied.status().ToString().c_str());
      return 1;
    }
  }
  std::printf("bike churn: n=%d, %d stations, k=%d, %zu bikes, %d epochs, "
              "%.1f%% churn/epoch\n",
              city.NumNodes(), l, k, service.tracked_customer_count(), epochs,
              100.0 * churn_rate);

  Rng rng(bench.seed + 7);
  WmaOptions cold_options = options.wma;
  std::vector<ChurnEpoch> rows;
  int failures = 0;

  for (int e = 0; e < epochs; ++e) {
    ChurnEpoch row;
    row.epoch = e;
    row.empty_delta = e == empty_delta_epoch;
    if (e > 0) {
      UpdateRequest delta;
      if (!row.empty_delta) {
        // ~churn_rate of the fleet moves: departures from tracked
        // nodes, arrivals resampled from the docking-demand profile.
        const McfsInstance snapshot = service.TrackedInstance(k);
        const int moves = std::max(
            1, static_cast<int>(churn_rate *
                                static_cast<double>(snapshot.m())));
        for (int t = 0; t < moves; ++t) {
          const NodeId gone = snapshot.customers[static_cast<size_t>(
              rng.UniformInt(0, snapshot.m() - 1))];
          delta.ops.push_back({UpdateKind::kCustomerDepart, gone, 0});
        }
        const std::vector<NodeId> fresh =
            SampleNodesWithReplacement(city, moves, rng);
        for (const NodeId node : fresh) {
          delta.ops.push_back({UpdateKind::kCustomerArrive, node, 0});
        }
        // Dock reconfigurations are rarer than bike churn: every third
        // epoch one station gains a dock and one loses a dock — the
        // capacity-delta classification path (the increase dirties the
        // component's matches; the decrease repairs in place).
        if (e % 3 == 0) {
          const int up = static_cast<int>(
              rng.UniformInt(0, static_cast<int64_t>(l) - 1));
          delta.ops.push_back(
              {UpdateKind::kCapacityDelta, snapshot.facility_nodes[up], 1});
          for (int probe = 0; probe < l; ++probe) {
            const int down = static_cast<int>(
                rng.UniformInt(0, static_cast<int64_t>(l) - 1));
            if (down != up && snapshot.capacities[down] > 1) {
              delta.ops.push_back({UpdateKind::kCapacityDelta,
                                   snapshot.facility_nodes[down], -1});
              break;
            }
          }
        }
      }
      const StatusOr<UpdateResult> applied = service.ApplyUpdate(delta);
      if (!applied.ok()) {
        std::printf("epoch %d delta rejected: %s\n", e,
                    applied.status().ToString().c_str());
        return 1;
      }
      row.ops = applied.value().ops_applied;
      row.components_dirtied = applied.value().components_dirtied;
    }

    // Warm path: repairs the previous epoch's matching (epoch 0 is the
    // cold warm-up that plants the first seed).
    const SolveResponse warm = service.ResolveTracked(k);
    if (!warm.status.ok()) {
      std::printf("epoch %d resolve failed: %s\n", e,
                  warm.status.ToString().c_str());
      return 1;
    }
    row.warm_seconds = warm.solve_seconds;
    row.customers = static_cast<int>(warm.solution.assignment.size());
    row.objective = warm.solution.objective;
    row.warm_customers_reused = warm.stats.warm_customers_reused;
    row.warm_customers_repaired = warm.stats.warm_customers_repaired;
    row.warm_final_resumed = warm.stats.warm_final_resumed;
    row.warm_served = warm.warm_served;
    row.verify_ok = !warm.verify_ran || warm.verify_ok;
    const int64_t touched =
        row.warm_customers_reused + row.warm_customers_repaired;
    row.repair_fraction =
        touched == 0 ? 1.0
                     : static_cast<double>(row.warm_customers_repaired) /
                           static_cast<double>(touched);

    // Cold baseline: a direct solve of the same instance, no seed.
    const McfsInstance instance = service.TrackedInstance(k);
    WallTimer cold_timer;
    const StatusOr<WmaResult> cold = SolveWma(instance, cold_options);
    row.cold_seconds = cold_timer.Seconds();
    if (!cold.ok()) {
      std::printf("epoch %d cold solve failed: %s\n", e,
                  cold.status().ToString().c_str());
      return 1;
    }
    const McfsSolution& cold_solution = cold.value().solution;
    // Churn epochs gate on the objective up to summation rounding:
    // degenerate optima (co-located bikes swapped between equidistant
    // stations) are equal-cost but can round the last bit differently.
    // The empty-delta epoch must reproduce the cold solution byte for
    // byte — selection, assignment, distances, and objective bits.
    const double rel_gap =
        std::abs(warm.solution.objective - cold_solution.objective) /
        (1.0 + std::abs(cold_solution.objective));
    row.objective_match =
        row.empty_delta
            ? (warm.solution.objective == cold_solution.objective &&
               warm.solution.selected == cold_solution.selected &&
               warm.solution.assignment == cold_solution.assignment &&
               warm.solution.distances == cold_solution.distances)
            : rel_gap <= 1e-9;
    row.speedup = row.warm_seconds > 0.0
                      ? row.cold_seconds / row.warm_seconds
                      : 0.0;
    if (!row.objective_match || !row.verify_ok) ++failures;
    std::printf(
        "epoch %2d%s: m=%d ops=%d warm=%s cold=%s speedup=%.2fx "
        "reused=%lld repaired=%lld %s%s\n",
        e, row.empty_delta ? " (empty delta)" : "", row.customers, row.ops,
        FmtSeconds(row.warm_seconds).c_str(),
        FmtSeconds(row.cold_seconds).c_str(), row.speedup,
        static_cast<long long>(row.warm_customers_reused),
        static_cast<long long>(row.warm_customers_repaired),
        row.objective_match ? "objective=match" : "OBJECTIVE MISMATCH",
        row.verify_ok ? "" : " VERIFY FAIL");
    if (row.epoch > 0 && !row.warm_served) {
      std::printf("epoch %2d: warm attempt fell back cold (excluded from "
                  "warm-speedup stats)\n",
                  e);
    }
    rows.push_back(row);
  }

  // Summary over the epochs that genuinely ran the warm repair path:
  // classification follows SolveResponse::warm_served — the path the
  // solve actually took — so epoch 0 (seed plant) and epochs whose warm
  // attempt fell back cold never inflate the warm statistics.
  std::vector<double> churn_speedups;
  double empty_delta_speedup = 0.0;
  double repair_fraction_sum = 0.0;
  int churn_epochs = 0;
  int cold_fallback_epochs = 0;
  for (const ChurnEpoch& row : rows) {
    if (!row.warm_served) {
      if (row.epoch > 0) ++cold_fallback_epochs;
      continue;
    }
    if (row.empty_delta) {
      empty_delta_speedup = row.speedup;
    } else {
      churn_speedups.push_back(row.speedup);
      repair_fraction_sum += row.repair_fraction;
      ++churn_epochs;
    }
  }
  const double median_speedup = Median(churn_speedups);
  const ServiceReport report = service.Report();
  std::printf(
      "median warm speedup %.2fx over %d warm-served churn epochs "
      "(%d cold fallbacks excluded, empty delta %.2fx, mean repair "
      "fraction %.3f); service: %lld warm / %lld cold resolves, %lld "
      "verify rejections\n",
      median_speedup, churn_epochs, cold_fallback_epochs,
      empty_delta_speedup,
      churn_epochs == 0 ? 0.0 : repair_fraction_sum / churn_epochs,
      static_cast<long long>(report.resolves_warm),
      static_cast<long long>(report.resolves_cold),
      static_cast<long long>(report.resolve_verify_rejections));

  const std::string out = flags.GetString(
      "resolve-report-out",
      flags.GetString("resolve_report_out", "BENCH_resolve.json"));
  if (!out.empty()) {
    std::ostringstream json;
    json << "{\"config\": {\"scale\": " << obs::JsonNumber(bench.scale)
         << ", \"seed\": " << bench.seed << ", \"nodes\": " << city.NumNodes()
         << ", \"stations\": " << l << ", \"k\": " << k
         << ", \"epochs\": " << epochs
         << ", \"churn_rate\": " << obs::JsonNumber(churn_rate)
         << ", \"threads\": " << bench.threads << "}, \"epochs\": [";
    for (size_t i = 0; i < rows.size(); ++i) {
      const ChurnEpoch& row = rows[i];
      if (i > 0) json << ", ";
      json << "{\"epoch\": " << row.epoch
           << ", \"empty_delta\": " << (row.empty_delta ? "true" : "false")
           << ", \"ops\": " << row.ops
           << ", \"components_dirtied\": " << row.components_dirtied
           << ", \"customers\": " << row.customers
           << ", \"warm_seconds\": " << obs::JsonNumber(row.warm_seconds)
           << ", \"cold_seconds\": " << obs::JsonNumber(row.cold_seconds)
           << ", \"speedup\": " << obs::JsonNumber(row.speedup)
           << ", \"objective\": " << obs::JsonNumber(row.objective)
           << ", \"repair_fraction\": "
           << obs::JsonNumber(row.repair_fraction)
           << ", \"warm_customers_reused\": " << row.warm_customers_reused
           << ", \"warm_customers_repaired\": " << row.warm_customers_repaired
           << ", \"warm_final_resumed\": "
           << (row.warm_final_resumed ? "true" : "false")
           << ", \"warm_served\": " << (row.warm_served ? "true" : "false")
           << ", \"objective_match\": "
           << (row.objective_match ? "true" : "false")
           << ", \"verify_ok\": " << (row.verify_ok ? "true" : "false")
           << "}";
    }
    json << "], \"summary\": {\"median_warm_speedup\": "
         << obs::JsonNumber(median_speedup)
         << ", \"empty_delta_speedup\": "
         << obs::JsonNumber(empty_delta_speedup)
         << ", \"mean_repair_fraction\": "
         << obs::JsonNumber(churn_epochs == 0
                                ? 0.0
                                : repair_fraction_sum / churn_epochs)
         << ", \"churn_epochs\": " << churn_epochs
         << ", \"cold_fallback_epochs\": " << cold_fallback_epochs
         << ", \"objective_mismatches\": " << failures
         << ", \"resolves_warm\": " << report.resolves_warm
         << ", \"resolves_cold\": " << report.resolves_cold
         << ", \"verify_rejections\": " << report.resolve_verify_rejections
         << "}, \"service\": " << report.Json() << "}";
    std::ofstream file(out);
    if (file.is_open()) {
      file << json.str() << "\n";
      if (file.good()) {
        std::printf("(resolve report written to %s)\n", out.c_str());
      }
    }
  }
  bench_util::FlushArtifacts(flags);
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace mcfs

int main(int argc, char** argv) {
  using namespace mcfs;
  const Flags flags(argc, argv);
  const auto bench = bench_util::BenchConfig::FromFlags(flags, 0.04);
  if (flags.GetBool("churn", false)) {
    bench_util::Banner("Serving: warm incremental re-solve under churn",
                       bench);
    return RunChurnBench(flags, bench);
  }
  bench_util::Banner("Serving: SolverService closed-loop load", bench);

  const Graph city = GenerateCity(AalborgPreset(bench.scale, bench.seed));
  Rng rng(bench.seed + 1);
  const int l = std::min(city.NumNodes() / 8, 300);
  const std::vector<NodeId> facilities = SampleDistinctNodes(city, l, rng);
  const std::vector<int> capacities = UniformCapacities(l, 10);
  const int k = l / 4;

  // The tiered gates compare tails under load: the full tier's p99 must
  // be queue-dominated for the 10x contract to be meaningful, so a fast-
  // tier run defaults to a heavier closed loop (more identities, more
  // concurrent clients).
  const int64_t fast_latency_ms = flags.GetInt("fast-latency-ms", 0);
  // The 10x tail contract is a calibrated-hardware claim; CI smoke runs
  // on shared runners at a small scale where the full tier is not
  // queue-dominated, so the ratio is a knob (<= 0 disables Gate 1, the
  // accounting and upgrade gates still apply).
  const double tier_gate_ratio =
      flags.GetDouble("tier-gate-ratio", 10.0);
  const int unique_requests = static_cast<int>(
      flags.GetInt("requests", fast_latency_ms > 0 ? 48 : 24));
  const int repeat = static_cast<int>(flags.GetInt("repeat", 2));
  const int clients = static_cast<int>(
      flags.GetInt("clients", fast_latency_ms > 0 ? 8 : 4));

  ServiceOptions options;
  options.serve_threads =
      static_cast<int>(flags.GetInt("serve-threads", bench.threads));
  options.queue_depth = static_cast<int>(flags.GetInt("queue-depth", 64));
  options.max_batch = static_cast<int>(flags.GetInt("max-batch", 8));
  options.default_deadline_ms = bench.deadline_ms;
  options.verify = bench.verify;
  options.wma.matcher = bench.matcher;
  const double slo_ms = flags.GetDouble("slo-ms", 0.0);
  if (slo_ms > 0.0) {
    SloPolicy slo;
    slo.tier = "default";
    slo.target_latency_ms = slo_ms;
    slo.error_budget = flags.GetDouble("slo-error-budget", 0.01);
    options.slos.push_back(std::move(slo));
  }
  // Tiered serving (DESIGN.md §4.14): --fast-latency-ms N puts every
  // other request in the mix under an N ms end-to-end SLA (tier "fast",
  // refine on), with its own SLO row, and gates the run on the fast
  // tier's contract: p99 at least 10x under the converged tier's, zero
  // verifier rejections on fast answers, and every refined identity's
  // cache entry upgraded in place.
  if (fast_latency_ms > 0) {
    SloPolicy slo;
    slo.tier = "fast";
    slo.target_latency_ms = static_cast<double>(fast_latency_ms);
    slo.error_budget = flags.GetDouble("slo-error-budget", 0.01);
    options.slos.push_back(std::move(slo));
  }
  // With a fast tier in play, batch and refinement threads yield the
  // CPU to the inline responder (--background-nice=0 to disable).
  options.background_nice = static_cast<int>(
      flags.GetInt("background-nice", fast_latency_ms > 0 ? 10 : 0));

  // Fault-tolerant serving (DESIGN.md §4.13): a seeded fault schedule
  // plus the client-side retry policy for the sheds it produces.
  const std::string fault_plan_spec = flags.GetString("fault-plan", "");
  std::shared_ptr<FaultPlan> fault_plan;
  if (!fault_plan_spec.empty()) {
    const StatusOr<FaultPlanSpec> parsed = FaultPlan::Parse(fault_plan_spec);
    if (!parsed.ok()) {
      std::printf("bad --fault-plan: %s\n",
                  parsed.status().ToString().c_str());
      return 1;
    }
    fault_plan = std::make_shared<FaultPlan>(parsed.value());
    options.fault_plan = fault_plan;
  }
  const bool allow_degraded =
      flags.GetBool("allow-degraded", fault_plan != nullptr);
  const int64_t backoff_base_ms = flags.GetInt("backoff-base-ms", 2);
  const int64_t backoff_max_ms = flags.GetInt("backoff-max-ms", 250);
  const int max_retries = static_cast<int>(flags.GetInt("max-retries", 6));

  // The request mix: varying customer counts around an occupancy the
  // instances stay feasible at, repeated `repeat` times so the service
  // path also shows cache amortization.
  std::vector<SolveRequest> mix;
  for (int r = 0; r < unique_requests; ++r) {
    const int m = 40 + 20 * (r % 5);
    SolveRequest request;
    request.customers = SampleNodesWithReplacement(city, m, rng);
    request.k = k;
    request.allow_degraded = allow_degraded;
    if (fast_latency_ms > 0 && r % 2 == 1) {
      request.max_latency_ms = fast_latency_ms;
      request.tier = "fast";
      request.refine = true;
    }
    mix.push_back(std::move(request));
  }
  std::vector<SolveRequest> requests;
  for (int rep = 0; rep < std::max(1, repeat); ++rep) {
    requests.insert(requests.end(), mix.begin(), mix.end());
  }
  const int n = static_cast<int>(requests.size());
  std::printf("city n=%d, l=%d candidates, k=%d; %d requests "
              "(%d unique x %d), %d clients\n",
              city.NumNodes(), l, k, n, unique_requests, repeat, clients);

  // --- direct (cold) reference ---
  std::vector<McfsSolution> reference(n);
  WallTimer timer;
  for (int r = 0; r < n; ++r) {
    McfsInstance instance;
    instance.graph = &city;
    instance.customers = requests[r].customers;
    instance.facility_nodes = facilities;
    instance.capacities = capacities;
    instance.k = requests[r].k;
    StatusOr<WmaResult> direct = SolveWma(instance);
    if (!direct.ok()) {
      std::printf("direct solve %d failed: %s\n", r,
                  direct.status().ToString().c_str());
      return 1;
    }
    reference[r] = std::move(direct).value().solution;
  }
  const double direct_seconds = timer.Seconds();

  // --- service (warm) path: closed-loop clients over a shared index ---
  SolverService service(&city, facilities, capacities, options);

  // --restore-from adopts a checkpoint written by an earlier process
  // before taking load. A rejected file would mean serving cold, which
  // is exactly what the recovery drill must not silently accept.
  const std::string restore_from = flags.GetString("restore-from", "");
  if (!restore_from.empty()) {
    const Status adopted = service.RestoreFrom(restore_from);
    if (!adopted.ok()) {
      std::printf("restore from %s failed: %s\n", restore_from.c_str(),
                  adopted.ToString().c_str());
      return 1;
    }
    std::printf("(restored warm state from %s; resuming at epoch %llu)\n",
                restore_from.c_str(),
                static_cast<unsigned long long>(service.epoch()));
  }

  // Live introspection sampler: one DebugSnapshot JSON line per tick
  // while the load runs, plus a final one after the queue drains (so the
  // file is non-empty even when the load finishes inside one tick).
  const int introspect_every_ms =
      static_cast<int>(flags.GetInt("introspect-every-ms", 0));
  const std::string introspect_out =
      flags.GetString("introspect-out", "introspect.jsonl");
  std::atomic<bool> introspect_stop{false};
  std::thread introspector;
  if (introspect_every_ms > 0 && !introspect_out.empty()) {
    introspector = std::thread([&] {
      std::ofstream file(introspect_out);
      while (!introspect_stop.load(std::memory_order_relaxed)) {
        file << service.DebugSnapshot().Json() << "\n";
        file.flush();
        std::this_thread::sleep_for(
            std::chrono::milliseconds(introspect_every_ms));
      }
      file << service.DebugSnapshot().Json() << "\n";
    });
  }

  std::vector<SolveResponse> responses(n);
  std::atomic<int> next{0};
  std::atomic<int64_t> retries_total{0};
  timer.Restart();
  std::vector<std::thread> workers;
  for (int c = 0; c < std::max(1, clients); ++c) {
    workers.emplace_back([&, c] {
      // Per-client jitter stream: deterministic, but de-synchronized
      // across clients so retries never stampede in lockstep.
      Rng jitter(bench.seed + 100 + static_cast<uint64_t>(c));
      for (int r = next.fetch_add(1); r < n; r = next.fetch_add(1)) {
        for (int attempt = 0;; ++attempt) {
          auto handle = service.Submit(requests[r]);
          // Bounded waits, never a blind Wait(): a wedged dispatcher
          // shows up as repeated timeouts instead of a silent hang.
          while (!handle->WaitFor(10'000)) {
          }
          responses[r] = handle->Wait();
          const SolveResponse& response = responses[r];
          if (response.status.code() != StatusCode::kUnavailable ||
              attempt >= max_retries) {
            break;
          }
          // Shutdown is the one rejection a retry can never outwait.
          // Futility keys on the flag, not on retry_after_ms == 0 — a
          // live service legitimately hints 0 too (idle queue, ladder
          // bottomed out), and those rejections are worth retrying.
          if (response.shutdown) break;
          retries_total.fetch_add(1);
          // Jittered exponential backoff floored at the server's hint:
          // sleep uniform in [ceiling/2, ceiling].
          int64_t ceiling = backoff_base_ms << std::min(attempt, 16);
          ceiling = std::min(ceiling, backoff_max_ms);
          ceiling = std::max(ceiling, response.retry_after_ms);
          const int64_t delay =
              ceiling <= 1 ? ceiling
                           : jitter.UniformInt((ceiling + 1) / 2, ceiling);
          std::this_thread::sleep_for(std::chrono::milliseconds(delay));
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double service_seconds = timer.Seconds();
  // Every fast answer's background refinement completes before the
  // report is read, so the upgrade-in-place gate below observes the
  // cache deterministically. (Refinement time is deliberately outside
  // the measured load window — it is background work.)
  service.DrainRefinements();
  if (introspector.joinable()) {
    introspect_stop.store(true, std::memory_order_relaxed);
    introspector.join();
    std::printf("(introspection snapshots written to %s)\n",
                introspect_out.c_str());
  }

  // Outcome classes: converged answers are cross-checked bit-identical
  // to the direct reference; degraded answers carry their own contract
  // (always verified, quality-bounded) instead; deadline-cut full-tier
  // answers and kUnavailable sheds have no bit reference and are
  // surfaced as their own classes rather than folded into mismatches.
  int64_t converged = 0, degraded = 0, fast = 0, anytime_cut = 0, shed = 0,
          failed = 0;
  int mismatches = 0;
  // Per unique identity: the trace ids of its refine-opted answers that
  // were actually computed (not cache hits), for the upgrade-in-place
  // gate. The planted entry keeps its planting trace through the
  // upgrade, but a queued full solve racing the fast plant can
  // legitimately create the entry first — under its own trace — so the
  // gate accepts any trace this identity was served under.
  std::vector<std::vector<uint64_t>> served_traces(mix.size());
  for (int r = 0; r < n; ++r) {
    const SolveResponse& response = responses[r];
    if (response.status.ok() && !response.cache_hit &&
        requests[r].refine) {
      served_traces[static_cast<size_t>(r) % mix.size()].push_back(
          response.trace_id);
    }
    if (!response.status.ok()) {
      if (response.status.code() == StatusCode::kUnavailable) {
        ++shed;  // client gave up after the retry budget
      } else {
        ++failed;
        std::printf("FAILED request %d: %s\n", r,
                    response.status.ToString().c_str());
      }
      continue;
    }
    if (response.tier == "degraded") {
      ++degraded;
      // kDegenerateQualityBound is "served, bound degenerate" (lower
      // bound 0 with co-located customers), not a quality failure.
      if (!response.verify_ran || !response.verify_ok ||
          (response.quality_bound < 1.0 &&
           response.quality_bound != kDegenerateQualityBound)) {
        ++mismatches;
        std::printf(
            "MISMATCH on degraded request %d: unverified or unbounded\n", r);
      }
      continue;
    }
    if (response.tier == "fast") {
      ++fast;
      // The fast contract: always verifier-blessed, always bounded. No
      // bit reference — the instant responder is a different algorithm
      // by design; fidelity arrives via the background refinement.
      if (!response.verify_ran || !response.verify_ok ||
          (response.quality_bound < 1.0 &&
           response.quality_bound != kDegenerateQualityBound)) {
        ++mismatches;
        std::printf("MISMATCH on fast request %d: unverified or unbounded\n",
                    r);
      }
      continue;
    }
    if (response.solution.termination != Termination::kConverged) {
      ++anytime_cut;
      continue;
    }
    ++converged;
    if (response.solution.selected != reference[r].selected ||
        response.solution.assignment != reference[r].assignment ||
        response.solution.objective != reference[r].objective ||
        (response.verify_ran && !response.verify_ok)) {
      ++mismatches;
      std::printf("MISMATCH on request %d: %s\n", r,
                  response.status.ToString().c_str());
    }
  }

  const ServiceReport report = service.Report();
  Table table({"path", "requests", "total", "req/s", "p50", "p99"});
  table.AddRow({"direct (cold)", FmtInt(n), FmtSeconds(direct_seconds),
                FmtDouble(n / direct_seconds, 1), "-", "-"});
  table.AddRow({"service (warm)", FmtInt(n), FmtSeconds(service_seconds),
                FmtDouble(n / service_seconds, 1),
                FmtSeconds(report.latency.p50),
                FmtSeconds(report.latency.p99)});
  if (fast_latency_ms > 0) {
    table.AddRow({"tier fast", FmtInt(report.latency_fast.count), "-", "-",
                  FmtSeconds(report.latency_fast.p50),
                  FmtSeconds(report.latency_fast.p99)});
    table.AddRow({"tier full", FmtInt(report.latency_full.count), "-", "-",
                  FmtSeconds(report.latency_full.p50),
                  FmtSeconds(report.latency_full.p99)});
  }
  table.Print();
  std::printf(
      "warm state: %lld build(s) in %s; per-request preprocess %s vs "
      "cold %s; %lld cache hits, %lld batches (max %d)\n",
      static_cast<long long>(report.epochs_built),
      FmtSeconds(report.warm_build_seconds).c_str(),
      FmtSeconds(report.requests_completed == 0
                     ? 0.0
                     : report.preprocess_seconds_total /
                           report.requests_completed)
          .c_str(),
      FmtSeconds(report.epochs_built == 0
                     ? 0.0
                     : report.warm_build_seconds / report.epochs_built)
          .c_str(),
      static_cast<long long>(report.cache_hits),
      static_cast<long long>(report.batches), report.max_batch_size);

  std::printf(
      "outcomes: %lld converged, %lld fast, %lld degraded, %lld "
      "deadline-cut, %lld shed, %lld failed; %lld client retries\n",
      static_cast<long long>(converged), static_cast<long long>(fast),
      static_cast<long long>(degraded), static_cast<long long>(anytime_cut),
      static_cast<long long>(shed), static_cast<long long>(failed),
      static_cast<long long>(retries_total.load()));
  if (fast_latency_ms > 0) {
    std::printf(
        "tiered: %lld fast responses, %lld fallthroughs, %lld refinements "
        "(%lld upgrades, %lld discards)\n",
        static_cast<long long>(report.fast_responses),
        static_cast<long long>(report.fast_fallthroughs),
        static_cast<long long>(report.refine_runs),
        static_cast<long long>(report.refine_upgrades),
        static_cast<long long>(report.refine_discards));
    // Gate 1: the SLA tier is at least `tier_gate_ratio`x faster at
    // the tail than the converged tier on the same load.
    if (tier_gate_ratio > 0.0 && report.latency_fast.count > 0 &&
        report.latency_full.count > 0 &&
        report.latency_fast.p99 * tier_gate_ratio >
            report.latency_full.p99) {
      ++mismatches;
      std::printf("TIER GATE: fast p99 %s not %.3gx under full p99 %s\n",
                  FmtSeconds(report.latency_fast.p99).c_str(),
                  tier_gate_ratio,
                  FmtSeconds(report.latency_full.p99).c_str());
    }
    // Gate 2: every refine-opted identity that was actually computed
    // now holds a converged entry — same key, same epoch, and the trace
    // id of one of the answers served for it (the planting fast answer,
    // or the queued full solve that overtook it).
    for (size_t u = 0; u < mix.size(); ++u) {
      if (served_traces[u].empty()) continue;
      const CacheProbe probe = service.ProbeCache(mix[u]);
      const bool trace_matches =
          std::find(served_traces[u].begin(), served_traces[u].end(),
                    probe.trace_id) != served_traces[u].end();
      if (!probe.present || probe.tier != "full" ||
          probe.epoch != service.epoch() || !trace_matches) {
        ++mismatches;
        std::printf("UPGRADE GATE: identity %zu not upgraded in place "
                    "(present=%d tier=%s epoch=%llu trace=%llu)\n",
                    u, probe.present ? 1 : 0, probe.tier.c_str(),
                    static_cast<unsigned long long>(probe.epoch),
                    static_cast<unsigned long long>(probe.trace_id));
      }
    }
  }
  if (fault_plan != nullptr) {
    std::printf("service fault-tolerance: shed=%lld degraded=%lld "
                "fallbacks=%lld faults_injected=%lld\n",
                static_cast<long long>(report.requests_shed),
                static_cast<long long>(report.degraded_responses),
                static_cast<long long>(report.degraded_fallbacks),
                static_cast<long long>(report.faults_injected));
    std::printf("fault plan: %s\n", fault_plan->Json().c_str());
  }

  for (const SloReport& slo : report.slos) {
    std::printf(
        "slo %s: %lld/%lld over %.1fms target, budget burn %.2f\n",
        slo.tier.c_str(), static_cast<long long>(slo.violations),
        static_cast<long long>(slo.requests), slo.target_latency_ms,
        slo.burn);
  }

  const std::string service_report_out =
      flags.GetString("service-report-out",
                      flags.GetString("service_report_out",
                                      "service_report.json"));
  if (!service_report_out.empty() &&
      report.WriteJson(service_report_out)) {
    std::printf("(service report written to %s)\n",
                service_report_out.c_str());
  }

  // Warm-state checkpoint + restore probe (--checkpoint-path): save the
  // serving state, restore it into a fresh service — the simulated
  // restart — and gate on epoch continuity.
  const std::string checkpoint_path = flags.GetString("checkpoint-path", "");
  if (!checkpoint_path.empty()) {
    Status saved = service.CheckpointTo(checkpoint_path);
    if (!saved.ok()) {
      // Typed failures (including injected kCheckpointIo faults) are
      // retried once — the recovery path the fault plan exists to prove.
      std::printf("checkpoint attempt failed (%s); retrying\n",
                  saved.ToString().c_str());
      saved = service.CheckpointTo(checkpoint_path);
    }
    if (!saved.ok()) {
      std::printf("checkpoint failed: %s\n", saved.ToString().c_str());
      return 1;
    }
    SolverService restored(&city, facilities, capacities, options);
    const Status restore = restored.RestoreFrom(checkpoint_path);
    if (!restore.ok()) {
      std::printf("restore failed: %s\n", restore.ToString().c_str());
      return 1;
    }
    if (restored.epoch() != service.epoch()) {
      std::printf("restore epoch mismatch: %llu vs %llu\n",
                  static_cast<unsigned long long>(restored.epoch()),
                  static_cast<unsigned long long>(service.epoch()));
      return 1;
    }
    std::printf("(checkpoint saved to %s; restore probe resumed epoch "
                "%llu)\n",
                checkpoint_path.c_str(),
                static_cast<unsigned long long>(restored.epoch()));
  }

  // Deterministic postmortem probe (CI validates the dumped JSON): a
  // tiny service whose every solve expires on a seeded poll budget, so
  // the tracked resolve deadline-terminates and auto-dumps a
  // flight-recorder postmortem with the failing request's trace id.
  const std::string postmortem_out = flags.GetString("postmortem-out", "");
  if (!postmortem_out.empty()) {
    ServiceOptions probe = options;
    probe.flight_recorder = true;
    probe.postmortem_path = postmortem_out;
    probe.wma.deadline = Deadline::AfterPolls(2);
    SolverService probe_service(&city, facilities, capacities, probe);
    UpdateRequest arrivals;
    for (const NodeId customer : requests[0].customers) {
      arrivals.ops.push_back({UpdateKind::kCustomerArrive, customer, 0});
    }
    const StatusOr<UpdateResult> applied = probe_service.ApplyUpdate(arrivals);
    if (!applied.ok()) {
      std::printf("postmortem probe arrivals rejected: %s\n",
                  applied.status().ToString().c_str());
      return 1;
    }
    const SolveResponse probed = probe_service.ResolveTracked(k);
    if (probe_service.LastPostmortem().empty()) {
      std::printf("postmortem probe produced no dump (termination %d)\n",
                  static_cast<int>(probed.solution.termination));
      return 1;
    }
    std::printf("(postmortem probe: trace %llu dumped to %s)\n",
                static_cast<unsigned long long>(probed.trace_id),
                postmortem_out.c_str());
  }
  bench_util::FlushArtifacts(flags);

  if (mismatches > 0 || failed > 0) {
    std::printf("%d response(s) diverged from the direct reference, "
                "%lld failed outright\n",
                mismatches, static_cast<long long>(failed));
    return 1;
  }
  return 0;
}
