// Microbenchmarks (google-benchmark) for the performance-critical
// primitives: network Dijkstra, the incremental nearest-facility
// stream, optimal bipartite matching, the set-cover heuristic, and the
// dense transportation oracle.

#include <benchmark/benchmark.h>

#include <queue>
#include <unordered_map>

#include "mcfs/common/dary_heap.h"
#include "mcfs/common/flat_map.h"
#include "mcfs/common/random.h"
#include "mcfs/core/set_cover.h"
#include "mcfs/flow/cost_scaling.h"
#include "mcfs/flow/matcher.h"
#include "mcfs/flow/transport.h"
#include "mcfs/graph/facility_stream.h"
#include "mcfs/graph/generators.h"
#include "mcfs/graph/road_network.h"
#include "mcfs/hilbert/hilbert.h"
#include "mcfs/workload/workload.h"

namespace mcfs {
namespace {

const Graph& CityGraph() {
  static const Graph* graph =
      new Graph(GenerateCity(AalborgPreset(0.05, 42)));
  return *graph;
}

void BM_DijkstraFull(benchmark::State& state) {
  const Graph& graph = CityGraph();
  Rng rng(1);
  for (auto _ : state) {
    const NodeId source =
        static_cast<NodeId>(rng.UniformInt(0, graph.NumNodes() - 1));
    benchmark::DoNotOptimize(ShortestPathsFrom(graph, source));
  }
  state.SetItemsProcessed(state.iterations() * graph.NumNodes());
}
BENCHMARK(BM_DijkstraFull);

void BM_NearestFacilityStream(benchmark::State& state) {
  const Graph& graph = CityGraph();
  const int facilities = static_cast<int>(state.range(0));
  Rng rng(2);
  std::vector<int> facility_index_of_node(graph.NumNodes(), -1);
  const std::vector<NodeId> nodes =
      SampleDistinctNodes(graph, facilities, rng);
  for (int j = 0; j < facilities; ++j) facility_index_of_node[nodes[j]] = j;
  for (auto _ : state) {
    NearestFacilityStream stream(
        &graph, static_cast<NodeId>(rng.UniformInt(0, graph.NumNodes() - 1)),
        &facility_index_of_node);
    for (int pops = 0; pops < 10; ++pops) {
      benchmark::DoNotOptimize(stream.Pop());
    }
  }
}
BENCHMARK(BM_NearestFacilityStream)->Arg(64)->Arg(512);

void BM_IncrementalMatcher(benchmark::State& state) {
  const Graph& graph = CityGraph();
  const int m = static_cast<int>(state.range(0));
  Rng rng(3);
  const std::vector<NodeId> customers = SampleDistinctNodes(graph, m, rng);
  const std::vector<NodeId> facilities =
      SampleDistinctNodes(graph, m / 2, rng);
  const std::vector<int> capacities = UniformCapacities(m / 2, 4);
  for (auto _ : state) {
    IncrementalMatcher matcher(&graph, customers, facilities, capacities);
    benchmark::DoNotOptimize(matcher.MatchAllOnce());
  }
  state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_IncrementalMatcher)->Arg(64)->Arg(256);

// Cost-scaling counterpart of BM_IncrementalMatcher: same lazily
// materialized G_b, batch refine/discharge engine instead of SSPA.
void BM_CostScalingMatcher(benchmark::State& state) {
  const Graph& graph = CityGraph();
  const int m = static_cast<int>(state.range(0));
  Rng rng(3);
  const std::vector<NodeId> customers = SampleDistinctNodes(graph, m, rng);
  const std::vector<NodeId> facilities =
      SampleDistinctNodes(graph, m / 2, rng);
  const std::vector<int> capacities = UniformCapacities(m / 2, 4);
  for (auto _ : state) {
    CostScalingMatcher matcher(&graph, customers, facilities, capacities);
    benchmark::DoNotOptimize(matcher.MatchAll());
  }
  state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_CostScalingMatcher)->Arg(64)->Arg(256);

// Serial vs batched-prefetch matching on a clustered 50k-node network
// with sparse candidates: arg = thread count for PrefetchCandidates
// (1 = serial baseline where FindPair pays for every Dijkstra advance
// inline). Run with
//   --benchmark_filter=BM_MatcherPrefetch
//   --benchmark_out=BENCH_prefetch.json --benchmark_out_format=json
// to record the speedup; results are bit-identical across thread
// counts, only the wall-clock changes.
const Graph& ClusteredGraph50k() {
  static const Graph* graph = [] {
    SyntheticNetworkOptions options;
    options.num_nodes = 50000;
    options.alpha = 2.0;
    options.num_clusters = 25;
    options.seed = 42;
    return new Graph(GenerateSyntheticNetwork(options));
  }();
  return *graph;
}

void BM_MatcherPrefetch(benchmark::State& state) {
  const Graph& graph = ClusteredGraph50k();
  const int threads = static_cast<int>(state.range(0));
  constexpr int kCustomers = 1000;
  constexpr int kFacilities = 500;
  Rng rng(8);
  const std::vector<NodeId> customers =
      SampleDistinctNodes(graph, kCustomers, rng);
  const std::vector<NodeId> facilities =
      SampleDistinctNodes(graph, kFacilities, rng);
  const std::vector<int> capacities = UniformCapacities(kFacilities, 4);
  double objective = 0.0;
  for (auto _ : state) {
    IncrementalMatcher matcher(&graph, customers, facilities, capacities);
    // Matching needs ~1 candidate per customer plus the Theorem-1 peek;
    // with threads > 1 the streams advance in parallel before the
    // strictly serial SSPA augmentations consume them.
    matcher.PrefetchCandidates(std::vector<int>(kCustomers, 2), threads);
    benchmark::DoNotOptimize(matcher.MatchAllOnce());
    objective = matcher.TotalCost();
  }
  state.counters["objective"] = objective;
  state.SetItemsProcessed(state.iterations() * kCustomers);
}
BENCHMARK(BM_MatcherPrefetch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_CheckCover(benchmark::State& state) {
  const int l = static_cast<int>(state.range(0));
  const int m = l * 4;
  Rng rng(4);
  std::vector<std::vector<int>> sigma(l);
  for (int j = 0; j < l; ++j) {
    for (int t = 0; t < 8; ++t) {
      sigma[j].push_back(static_cast<int>(rng.UniformInt(0, m - 1)));
    }
  }
  const std::vector<int> demand(m, 1);
  for (auto _ : state) {
    std::vector<int64_t> last_selected(l, -1);
    CoverInput input;
    input.num_customers = m;
    input.k = l / 10 + 1;
    input.customers_of_facility = &sigma;
    input.demand = &demand;
    input.demand_cap = l;
    benchmark::DoNotOptimize(CheckCover(input, last_selected, 0));
  }
}
BENCHMARK(BM_CheckCover)->Arg(256)->Arg(2048);

void BM_DenseTransport(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int l = m / 2;
  Rng rng(5);
  std::vector<double> cost(static_cast<size_t>(m) * l);
  for (double& c : cost) c = rng.Uniform(1.0, 100.0);
  const std::vector<int> capacities(l, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveDenseTransport(m, l, cost, capacities));
  }
}
BENCHMARK(BM_DenseTransport)->Arg(64)->Arg(256);

void BM_DenseTransportCostScaling(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int l = m / 2;
  Rng rng(5);
  std::vector<double> cost(static_cast<size_t>(m) * l);
  for (double& c : cost) c = rng.Uniform(1.0, 100.0);
  const std::vector<int> capacities(l, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SolveDenseTransportCostScaling(m, l, cost, capacities));
  }
}
BENCHMARK(BM_DenseTransportCostScaling)->Arg(64)->Arg(256);

template <typename Heap>
void HeapWorkload(Heap& heap, Rng& rng, int ops) {
  for (int op = 0; op < ops; ++op) {
    heap.push({rng.NextDouble(), op});
    if (op % 3 == 2) heap.pop();
  }
  while (!heap.empty()) heap.pop();
}

struct HeapItem {
  double key;
  int payload;
  bool operator>(const HeapItem& other) const { return key > other.key; }
};
struct HeapItemLess {
  bool operator()(const HeapItem& a, const HeapItem& b) const {
    return a.key < b.key;
  }
};

void BM_StdPriorityQueue(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    std::priority_queue<HeapItem, std::vector<HeapItem>,
                        std::greater<HeapItem>>
        heap;
    HeapWorkload(heap, rng, static_cast<int>(state.range(0)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StdPriorityQueue)->Arg(10000)->Arg(100000);

void BM_DaryHeap4(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    DaryHeap<HeapItem, 4, HeapItemLess> heap;
    HeapWorkload(heap, rng, static_cast<int>(state.range(0)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DaryHeap4)->Arg(10000)->Arg(100000);

// --- Sparse-search kernel benches (committed as BENCH_kernels.json) ---
//
// Run with
//   --benchmark_filter='BM_FlatMap|BM_StampedMap|BM_StdUnorderedMap|BM_IncrementalDijkstra|BM_StreamAdvance'
//   --benchmark_out=BENCH_kernels.json --benchmark_out_format=json
// to record the kernel numbers (see DESIGN.md "Sparse-search kernels").

// Uniform synthetic network in the Fig.-6 workload shape (alpha = 2.0,
// no clusters) — the instance family whose WMA cost the stream/matcher
// counters attribute to these kernels.
const Graph& UniformGraph20k() {
  static const Graph* graph = [] {
    SyntheticNetworkOptions options;
    options.num_nodes = 20000;
    options.alpha = 2.0;
    options.num_clusters = 0;
    options.seed = 42;
    return new Graph(GenerateSyntheticNetwork(options));
  }();
  return *graph;
}

// Dijkstra-label workload shared by the map benches: a stream of mixed
// lookup/insert/update operations over `key_universe` int keys, the
// access pattern a relaxation loop produces (lookup the neighbor's
// label, write it back when improved).
std::vector<std::pair<int32_t, double>> LabelOps(int key_universe, int ops) {
  Rng rng(11);
  std::vector<std::pair<int32_t, double>> sequence;
  sequence.reserve(ops);
  for (int i = 0; i < ops; ++i) {
    sequence.push_back({static_cast<int32_t>(rng.UniformInt(0, key_universe - 1)),
                        rng.Uniform(0.0, 1000.0)});
  }
  return sequence;
}

template <typename Map>
double RunLabelOps(Map& map,
                   const std::vector<std::pair<int32_t, double>>& ops) {
  double sink = 0.0;
  for (const auto& [key, dist] : ops) {
    double& label = map[key];
    if (label == 0.0 || dist < label) label = dist;
    sink += label;
  }
  return sink;
}

void BM_FlatMap(benchmark::State& state) {
  const auto ops = LabelOps(static_cast<int>(state.range(0)),
                            4 * static_cast<int>(state.range(0)));
  for (auto _ : state) {
    FlatMap<int32_t, double> map;
    benchmark::DoNotOptimize(RunLabelOps(map, ops));
  }
  state.SetItemsProcessed(state.iterations() * ops.size());
}
BENCHMARK(BM_FlatMap)->Arg(1024)->Arg(65536);

void BM_StampedMap(benchmark::State& state) {
  const auto ops = LabelOps(static_cast<int>(state.range(0)),
                            4 * static_cast<int>(state.range(0)));
  StampedMap<int32_t, double> map;  // reused across iterations: O(1) Clear
  for (auto _ : state) {
    map.Clear();
    benchmark::DoNotOptimize(RunLabelOps(map, ops));
  }
  state.SetItemsProcessed(state.iterations() * ops.size());
}
BENCHMARK(BM_StampedMap)->Arg(1024)->Arg(65536);

void BM_StdUnorderedMap(benchmark::State& state) {
  const auto ops = LabelOps(static_cast<int>(state.range(0)),
                            4 * static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::unordered_map<int32_t, double> map;
    benchmark::DoNotOptimize(RunLabelOps(map, ops));
  }
  state.SetItemsProcessed(state.iterations() * ops.size());
}
BENCHMARK(BM_StdUnorderedMap)->Arg(1024)->Arg(65536);

// The per-customer resumable Dijkstra: settle `range(0)` nodes from a
// random source. items/s counts edge relaxations, so the reported rate
// is relaxations per second (the ns/relaxation of the WMA hot loop).
void BM_IncrementalDijkstra(benchmark::State& state) {
  const Graph& graph = UniformGraph20k();
  const int settles = static_cast<int>(state.range(0));
  Rng rng(12);
  int64_t relaxed = 0;
  for (auto _ : state) {
    IncrementalDijkstra dijkstra(
        &graph, static_cast<NodeId>(rng.UniformInt(0, graph.NumNodes() - 1)));
    for (int i = 0; i < settles; ++i) {
      if (!dijkstra.NextSettled().has_value()) break;
    }
    relaxed += dijkstra.num_relaxed();
  }
  state.SetItemsProcessed(relaxed);
}
BENCHMARK(BM_IncrementalDijkstra)->Arg(1000)->Arg(10000);

// Prefetch burst + consume on the nearest-facility stream (the matcher
// front end): 32 candidates buffered ahead, then popped.
void BM_StreamAdvance(benchmark::State& state) {
  const Graph& graph = UniformGraph20k();
  const int facilities = static_cast<int>(state.range(0));
  Rng rng(13);
  std::vector<int> facility_index_of_node(graph.NumNodes(), -1);
  const std::vector<NodeId> nodes =
      SampleDistinctNodes(graph, facilities, rng);
  for (int j = 0; j < facilities; ++j) facility_index_of_node[nodes[j]] = j;
  int64_t popped = 0;
  for (auto _ : state) {
    NearestFacilityStream stream(
        &graph, static_cast<NodeId>(rng.UniformInt(0, graph.NumNodes() - 1)),
        &facility_index_of_node);
    stream.Prefetch(32);
    for (int pops = 0; pops < 32; ++pops) {
      if (!stream.Pop().has_value()) break;
      ++popped;
    }
  }
  state.SetItemsProcessed(popped);
}
BENCHMARK(BM_StreamAdvance)->Arg(256);

void BM_HilbertIndex(benchmark::State& state) {
  Rng rng(6);
  uint64_t sink = 0;
  for (auto _ : state) {
    const uint32_t x = static_cast<uint32_t>(rng.UniformInt(0, (1 << 16) - 1));
    const uint32_t y = static_cast<uint32_t>(rng.UniformInt(0, (1 << 16) - 1));
    sink ^= HilbertIndex(16, x, y);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_HilbertIndex);

}  // namespace
}  // namespace mcfs

BENCHMARK_MAIN();
