// Microbenchmarks (google-benchmark) for the performance-critical
// primitives: network Dijkstra, the incremental nearest-facility
// stream, optimal bipartite matching, the set-cover heuristic, and the
// dense transportation oracle.

#include <benchmark/benchmark.h>

#include <queue>

#include "mcfs/common/dary_heap.h"
#include "mcfs/common/random.h"
#include "mcfs/core/set_cover.h"
#include "mcfs/flow/matcher.h"
#include "mcfs/flow/transport.h"
#include "mcfs/graph/facility_stream.h"
#include "mcfs/graph/generators.h"
#include "mcfs/graph/road_network.h"
#include "mcfs/hilbert/hilbert.h"
#include "mcfs/workload/workload.h"

namespace mcfs {
namespace {

const Graph& CityGraph() {
  static const Graph* graph =
      new Graph(GenerateCity(AalborgPreset(0.05, 42)));
  return *graph;
}

void BM_DijkstraFull(benchmark::State& state) {
  const Graph& graph = CityGraph();
  Rng rng(1);
  for (auto _ : state) {
    const NodeId source =
        static_cast<NodeId>(rng.UniformInt(0, graph.NumNodes() - 1));
    benchmark::DoNotOptimize(ShortestPathsFrom(graph, source));
  }
  state.SetItemsProcessed(state.iterations() * graph.NumNodes());
}
BENCHMARK(BM_DijkstraFull);

void BM_NearestFacilityStream(benchmark::State& state) {
  const Graph& graph = CityGraph();
  const int facilities = static_cast<int>(state.range(0));
  Rng rng(2);
  std::vector<int> facility_index_of_node(graph.NumNodes(), -1);
  const std::vector<NodeId> nodes =
      SampleDistinctNodes(graph, facilities, rng);
  for (int j = 0; j < facilities; ++j) facility_index_of_node[nodes[j]] = j;
  for (auto _ : state) {
    NearestFacilityStream stream(
        &graph, static_cast<NodeId>(rng.UniformInt(0, graph.NumNodes() - 1)),
        &facility_index_of_node);
    for (int pops = 0; pops < 10; ++pops) {
      benchmark::DoNotOptimize(stream.Pop());
    }
  }
}
BENCHMARK(BM_NearestFacilityStream)->Arg(64)->Arg(512);

void BM_IncrementalMatcher(benchmark::State& state) {
  const Graph& graph = CityGraph();
  const int m = static_cast<int>(state.range(0));
  Rng rng(3);
  const std::vector<NodeId> customers = SampleDistinctNodes(graph, m, rng);
  const std::vector<NodeId> facilities =
      SampleDistinctNodes(graph, m / 2, rng);
  const std::vector<int> capacities = UniformCapacities(m / 2, 4);
  for (auto _ : state) {
    IncrementalMatcher matcher(&graph, customers, facilities, capacities);
    benchmark::DoNotOptimize(matcher.MatchAllOnce());
  }
  state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_IncrementalMatcher)->Arg(64)->Arg(256);

// Serial vs batched-prefetch matching on a clustered 50k-node network
// with sparse candidates: arg = thread count for PrefetchCandidates
// (1 = serial baseline where FindPair pays for every Dijkstra advance
// inline). Run with
//   --benchmark_filter=BM_MatcherPrefetch
//   --benchmark_out=BENCH_prefetch.json --benchmark_out_format=json
// to record the speedup; results are bit-identical across thread
// counts, only the wall-clock changes.
const Graph& ClusteredGraph50k() {
  static const Graph* graph = [] {
    SyntheticNetworkOptions options;
    options.num_nodes = 50000;
    options.alpha = 2.0;
    options.num_clusters = 25;
    options.seed = 42;
    return new Graph(GenerateSyntheticNetwork(options));
  }();
  return *graph;
}

void BM_MatcherPrefetch(benchmark::State& state) {
  const Graph& graph = ClusteredGraph50k();
  const int threads = static_cast<int>(state.range(0));
  constexpr int kCustomers = 1000;
  constexpr int kFacilities = 500;
  Rng rng(8);
  const std::vector<NodeId> customers =
      SampleDistinctNodes(graph, kCustomers, rng);
  const std::vector<NodeId> facilities =
      SampleDistinctNodes(graph, kFacilities, rng);
  const std::vector<int> capacities = UniformCapacities(kFacilities, 4);
  double objective = 0.0;
  for (auto _ : state) {
    IncrementalMatcher matcher(&graph, customers, facilities, capacities);
    // Matching needs ~1 candidate per customer plus the Theorem-1 peek;
    // with threads > 1 the streams advance in parallel before the
    // strictly serial SSPA augmentations consume them.
    matcher.PrefetchCandidates(std::vector<int>(kCustomers, 2), threads);
    benchmark::DoNotOptimize(matcher.MatchAllOnce());
    objective = matcher.TotalCost();
  }
  state.counters["objective"] = objective;
  state.SetItemsProcessed(state.iterations() * kCustomers);
}
BENCHMARK(BM_MatcherPrefetch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_CheckCover(benchmark::State& state) {
  const int l = static_cast<int>(state.range(0));
  const int m = l * 4;
  Rng rng(4);
  std::vector<std::vector<int>> sigma(l);
  for (int j = 0; j < l; ++j) {
    for (int t = 0; t < 8; ++t) {
      sigma[j].push_back(static_cast<int>(rng.UniformInt(0, m - 1)));
    }
  }
  const std::vector<int> demand(m, 1);
  for (auto _ : state) {
    std::vector<int64_t> last_selected(l, -1);
    CoverInput input;
    input.num_customers = m;
    input.k = l / 10 + 1;
    input.customers_of_facility = &sigma;
    input.demand = &demand;
    input.demand_cap = l;
    benchmark::DoNotOptimize(CheckCover(input, last_selected, 0));
  }
}
BENCHMARK(BM_CheckCover)->Arg(256)->Arg(2048);

void BM_DenseTransport(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int l = m / 2;
  Rng rng(5);
  std::vector<double> cost(static_cast<size_t>(m) * l);
  for (double& c : cost) c = rng.Uniform(1.0, 100.0);
  const std::vector<int> capacities(l, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveDenseTransport(m, l, cost, capacities));
  }
}
BENCHMARK(BM_DenseTransport)->Arg(64)->Arg(256);

template <typename Heap>
void HeapWorkload(Heap& heap, Rng& rng, int ops) {
  for (int op = 0; op < ops; ++op) {
    heap.push({rng.NextDouble(), op});
    if (op % 3 == 2) heap.pop();
  }
  while (!heap.empty()) heap.pop();
}

struct HeapItem {
  double key;
  int payload;
  bool operator>(const HeapItem& other) const { return key > other.key; }
};
struct HeapItemLess {
  bool operator()(const HeapItem& a, const HeapItem& b) const {
    return a.key < b.key;
  }
};

void BM_StdPriorityQueue(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    std::priority_queue<HeapItem, std::vector<HeapItem>,
                        std::greater<HeapItem>>
        heap;
    HeapWorkload(heap, rng, static_cast<int>(state.range(0)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StdPriorityQueue)->Arg(10000)->Arg(100000);

void BM_DaryHeap4(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    DaryHeap<HeapItem, 4, HeapItemLess> heap;
    HeapWorkload(heap, rng, static_cast<int>(state.range(0)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DaryHeap4)->Arg(10000)->Arg(100000);

void BM_HilbertIndex(benchmark::State& state) {
  Rng rng(6);
  uint64_t sink = 0;
  for (auto _ : state) {
    const uint32_t x = static_cast<uint32_t>(rng.UniformInt(0, (1 << 16) - 1));
    const uint32_t y = static_cast<uint32_t>(rng.UniformInt(0, (1 << 16) - 1));
    sink ^= HilbertIndex(16, x, y);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_HilbertIndex);

}  // namespace
}  // namespace mcfs

BENCHMARK_MAIN();
