// Reproduces Figure 8 (a-d): clustered network of fixed size (the paper
// uses n = 10^4, 20 clusters) with the other problem parameters swept:
//   (a) candidate set size l from 40% to 100% of the nodes;
//   (b) number of customers m;
//   (c) scaled-up customers (several per node) at occupancy 0.1;
//   (d) number of selected facilities k.
//
// Expected shape (paper): Hilbert is sensitive to small candidate sets
// (8a) while both WMA variants stay stable; objective grows with m and
// falls with k; WMA runtimes drop as facilities grow.

#include <cmath>

#include "bench/bench_util.h"
#include "mcfs/graph/generators.h"
#include "mcfs/workload/workload.h"

namespace mcfs {
namespace {

using bench_util::BenchConfig;
using bench_util::SweepTable;

Graph MakeGraph(int n, uint64_t seed) {
  SyntheticNetworkOptions options;
  options.num_nodes = n;
  options.alpha = 2.0;
  options.num_clusters = 20;
  options.seed = seed;
  return GenerateSyntheticNetwork(options);
}

using bench_util::MakeSuite;

void SweepCandidates(const Graph& graph, const BenchConfig& bench,
                     const Flags& flags) {
  std::printf("\n--- Fig 8a: variable candidate set size l ---\n");
  SweepTable table("l/n");
  const int n = graph.NumNodes();
  const int m = std::max(8, n / 10);
  for (const double fraction : {0.4, 0.6, 0.8, 1.0}) {
    const int l = static_cast<int>(n * fraction);
    auto build = [&](uint64_t seed) {
      Rng rng(seed);
      McfsInstance instance;
      instance.graph = &graph;
      instance.customers = SampleDistinctNodes(graph, m, rng);
      instance.facility_nodes = SampleDistinctNodes(graph, l, rng);
      instance.capacities = UniformCapacities(l, 20);
      instance.k = std::max(1, m / 10);
      return instance;
    };
    const McfsInstance instance = bench_util::BuildFeasibleInstance(
        build, bench.seed + static_cast<uint64_t>(fraction * 100));
    table.Add(FmtDouble(fraction, 1), RunSuite(instance, MakeSuite(bench)));
  }
  table.PrintAndMaybeSave(flags);
}

void SweepCustomers(const Graph& graph, const BenchConfig& bench,
                    const Flags& flags) {
  std::printf("\n--- Fig 8b: variable number of customers m ---\n");
  SweepTable table("m");
  const int n = graph.NumNodes();
  for (const double fraction : {0.05, 0.10, 0.15, 0.20}) {
    const int m = std::max(8, static_cast<int>(n * fraction));
    auto build = [&](uint64_t seed) {
      Rng rng(seed);
      McfsInstance instance;
      instance.graph = &graph;
      instance.customers = SampleDistinctNodes(graph, m, rng);
      instance.facility_nodes = SampleDistinctNodes(graph, n, rng);
      instance.capacities = UniformCapacities(n, 20);
      instance.k = std::max(1, m / 10);
      return instance;
    };
    const McfsInstance instance = bench_util::BuildFeasibleInstance(
        build, bench.seed + static_cast<uint64_t>(fraction * 1000));
    table.Add(FmtInt(m), RunSuite(instance, MakeSuite(bench)));
  }
  table.PrintAndMaybeSave(flags);
}

void SweepScaledUpCustomers(const Graph& graph, const BenchConfig& bench,
                            const Flags& flags) {
  std::printf(
      "\n--- Fig 8c: scaled-up customers (multiple per node), o=0.1 ---\n");
  SweepTable table("m");
  const int n = graph.NumNodes();
  for (const double factor : {0.5, 1.0, 2.0}) {
    const int m = std::max(16, static_cast<int>(n * factor));
    auto build = [&](uint64_t seed) {
      Rng rng(seed);
      McfsInstance instance;
      instance.graph = &graph;
      instance.customers = SampleNodesWithReplacement(graph, m, rng);
      instance.facility_nodes = SampleDistinctNodes(graph, n, rng);
      const int c = 20;
      instance.capacities = UniformCapacities(n, c);
      instance.k = std::max(1, m / (c / 10));  // o = m/(c*k) = 0.1
      return instance;
    };
    const McfsInstance instance = bench_util::BuildFeasibleInstance(
        build, bench.seed + static_cast<uint64_t>(factor * 10));
    table.Add(FmtInt(m), RunSuite(instance, MakeSuite(bench)));
  }
  table.PrintAndMaybeSave(flags);
}

void SweepK(const Graph& graph, const BenchConfig& bench,
            const Flags& flags) {
  std::printf("\n--- Fig 8d: variable number of facilities k ---\n");
  SweepTable table("k");
  const int n = graph.NumNodes();
  const int m = std::max(8, n / 10);
  for (const double fraction : {0.05, 0.1, 0.2, 0.4}) {
    auto build = [&](uint64_t seed) {
      Rng rng(seed);
      McfsInstance instance;
      instance.graph = &graph;
      instance.customers = SampleDistinctNodes(graph, m, rng);
      instance.facility_nodes = SampleDistinctNodes(graph, n, rng);
      instance.capacities = UniformCapacities(n, 20);
      instance.k = std::max(1, static_cast<int>(m * fraction));
      return instance;
    };
    const McfsInstance instance =
        bench_util::BuildFeasibleInstance(build, bench.seed + 5);
    table.Add(FmtInt(instance.k), RunSuite(instance, MakeSuite(bench)));
  }
  table.PrintAndMaybeSave(flags);
}

}  // namespace
}  // namespace mcfs

int main(int argc, char** argv) {
  using namespace mcfs;
  const Flags flags(argc, argv);
  const auto bench = bench_util::BenchConfig::FromFlags(flags, 0.2);
  bench_util::Banner("Figure 8: parameter sweeps on clustered data", bench);
  const int n = std::max(256, static_cast<int>(10000 * bench.scale));
  const Graph graph = MakeGraph(n, bench.seed);
  std::printf("graph: n=%d, edges=%lld, avg degree %.2f\n", graph.NumNodes(),
              static_cast<long long>(graph.NumEdges()),
              graph.AverageDegree());
  SweepCandidates(graph, bench, flags);
  SweepCustomers(graph, bench, flags);
  SweepScaledUpCustomers(graph, bench, flags);
  SweepK(graph, bench, flags);
  return 0;
}
