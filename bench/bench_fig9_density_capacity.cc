// Reproduces Figure 9: (a) the effect of graph density alpha (the
// x-axis reports the *measured* average degree, as in the paper) and
// (b) the effect of the uniform capacity c at alpha = 1.5.
//
// Expected shape (paper): WMA's objective improves with density and
// approaches the optimum; capacity barely affects quality except in the
// tight-occupancy regime (small c), where the problem is hardest; the
// exact solver becomes faster as capacity grows.

#include <cmath>

#include "bench/bench_util.h"
#include "mcfs/graph/generators.h"
#include "mcfs/workload/workload.h"

namespace mcfs {
namespace {

using bench_util::BenchConfig;
using bench_util::SweepTable;

Graph MakeGraph(int n, double alpha, uint64_t seed) {
  SyntheticNetworkOptions options;
  options.num_nodes = n;
  options.alpha = alpha;
  options.num_clusters = 5;
  options.seed = seed;
  return GenerateSyntheticNetwork(options);
}

McfsInstance MakeInstance(const Graph& graph, int capacity, uint64_t seed) {
  const int n = graph.NumNodes();
  auto build = [&](uint64_t s) {
    Rng rng(s);
    McfsInstance instance;
    instance.graph = &graph;
    instance.customers = SampleDistinctNodes(graph, std::max(8, n / 10), rng);
    instance.facility_nodes = SampleDistinctNodes(graph, n, rng);
    instance.capacities = UniformCapacities(n, capacity);
    instance.k =
        std::max(1, static_cast<int>(instance.customers.size()) / 5);
    return instance;
  };
  return bench_util::BuildFeasibleInstance(build, seed);
}

}  // namespace
}  // namespace mcfs

int main(int argc, char** argv) {
  using namespace mcfs;
  const Flags flags(argc, argv);
  const auto bench = bench_util::BenchConfig::FromFlags(flags, 0.2);
  const int n = std::max(256, static_cast<int>(10000 * bench.scale));

  bench_util::Banner("Figure 9a: effect of density alpha (c = 10)", bench);
  {
    bench_util::SweepTable table("avg degree");
    for (const double alpha : {1.0, 1.2, 1.5, 2.0, 2.5}) {
      const Graph graph = MakeGraph(n, alpha, bench.seed);
      const McfsInstance instance = MakeInstance(graph, 10, bench.seed + 3);
      AlgorithmSuite suite = bench_util::MakeSuite(bench);
      table.Add(FmtDouble(graph.AverageDegree(), 2),
                RunSuite(instance, suite));
    }
    table.PrintAndMaybeSave(flags);
  }

  bench_util::Banner("Figure 9b: effect of capacity c (alpha = 1.5)", bench);
  {
    bench_util::SweepTable table("c");
    const Graph graph = MakeGraph(n, 1.5, bench.seed + 1);
    for (const int c : {5, 6, 10, 20, 40}) {
      const McfsInstance instance = MakeInstance(graph, c, bench.seed + 4);
      AlgorithmSuite suite = bench_util::MakeSuite(bench);
      table.Add(FmtInt(c), RunSuite(instance, suite));
    }
    table.PrintAndMaybeSave(flags);
  }
  return 0;
}
