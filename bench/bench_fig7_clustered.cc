// Reproduces Figure 7 (a-d): clustered synthetic networks of growing
// size. Cluster structure makes network distances diverge from
// geometric ones, which is where WMA's advantage over the Hilbert
// clustering baseline becomes pronounced; WMA Naive becomes an outlier.
//
// Expected shape (paper): WMA < Hilbert < WMA Naive << BRNN on
// objective; Hilbert nearly catches up when the data approaches a
// uniform distribution (5 clusters, Fig. 7d).

#include <cmath>

#include "bench/bench_util.h"
#include "mcfs/graph/generators.h"
#include "mcfs/workload/workload.h"

namespace mcfs {
namespace {

using bench_util::BenchConfig;
using bench_util::SweepTable;

struct Fig7Config {
  const char* name;
  int clusters;
  double customer_fraction;
  double k_fraction;  // k = fraction * m
  int capacity;
  bool with_brnn;
};

void RunConfig(const Fig7Config& config, const BenchConfig& bench,
               const Flags& flags) {
  std::printf(
      "\n--- Fig 7%s: %d clusters, m=%.2gn, k=%.2gm, c=%d ---\n",
      config.name, config.clusters, config.customer_fraction,
      config.k_fraction, config.capacity);
  SweepTable table("n");
  for (int base : {512, 1024, 2048, 4096}) {
    const int n = std::max(128, static_cast<int>(base * bench.scale * 4));
    SyntheticNetworkOptions graph_options;
    graph_options.num_nodes = n;
    graph_options.alpha = 2.0;
    graph_options.num_clusters = config.clusters;
    graph_options.seed = bench.seed + base;
    const Graph graph = GenerateSyntheticNetwork(graph_options);

    const int m = std::max(4, static_cast<int>(n * config.customer_fraction));
    auto build = [&](uint64_t seed) {
      Rng rng(seed);
      McfsInstance instance;
      instance.graph = &graph;
      instance.customers = SampleDistinctNodes(graph, m, rng);
      instance.facility_nodes = SampleDistinctNodes(graph, n, rng);  // F_p = V
      instance.capacities = UniformCapacities(n, config.capacity);
      instance.k = std::max(1, static_cast<int>(m * config.k_fraction));
      return instance;
    };
    const McfsInstance instance =
        bench_util::BuildFeasibleInstance(build, bench.seed + base + 7);

    AlgorithmSuite suite = bench_util::MakeSuite(bench);
    suite.with_brnn = config.with_brnn;
    table.Add(FmtInt(n), RunSuite(instance, suite));
  }
  table.PrintAndMaybeSave(flags);
}

}  // namespace
}  // namespace mcfs

int main(int argc, char** argv) {
  using namespace mcfs;
  const Flags flags(argc, argv);
  const auto bench = bench_util::BenchConfig::FromFlags(flags, 0.125);
  bench_util::Banner("Figure 7: clustered synthetic data, variable size",
                     bench);
  // (a) highly clustered, more customers, relaxed capacity, BRNN shown.
  RunConfig({"a", 40, 0.20, 0.10, 20, true}, bench, flags);
  // (b) smaller occupancy and smaller capacity.
  RunConfig({"b", 40, 0.10, 0.50, 4, false}, bench, flags);
  // (c) 20 clusters, low occupancy.
  RunConfig({"c", 20, 0.10, 0.20, 10, false}, bench, flags);
  // (d) 5 clusters — close to uniform; Hilbert nearly matches WMA.
  RunConfig({"d", 5, 0.10, 0.10, 20, false}, bench, flags);
  return 0;
}
