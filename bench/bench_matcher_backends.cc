// Crossover study for the MatcherBackend registry (DESIGN.md §4.12):
// times the SSPA IncrementalMatcher against the cost-scaling engine on
// the same batch assignment (AssignOptimally over a fixed selection)
// across instance shapes, checks the two reach equal objectives, and
// scores the `auto` decision model against the measured winners. The
// committed artifact is BENCH_matcher_backends.json; CI replays a
// smaller preset and validates the schema (matcher-backends-smoke).
//
// Flags beyond the shared bench_util set:
//   --repeat=N   timing repeats per (cell, backend); the median is
//                reported (default 5)
//   --backends-out=PATH  JSON artifact path (default
//                BENCH_matcher_backends.json)
//
// Exit status is nonzero when any cell's backends disagree (objective
// beyond 1e-9 relative, or feasibility mismatch) — the bench doubles as
// the cross-check the integration tests run at small scale.

#include <algorithm>
#include <cmath>
#include <fstream>
#include <numeric>
#include <sstream>
#include <vector>

#include "bench/bench_util.h"
#include "mcfs/common/timer.h"
#include "mcfs/core/instance.h"
#include "mcfs/flow/matcher_backend.h"
#include "mcfs/graph/road_network.h"
#include "mcfs/workload/workload.h"

namespace mcfs {
namespace {

struct CellSpec {
  const char* name;
  // "dense" cells are where cost scaling should win (>= 1.3x on the
  // committed preset); "sparse" cells are where SSPA stays the default.
  const char* preset;
  int customers;
  int facilities;
  int capacity;     // uniform per-facility capacity
  int seed_offset;  // added to --seed; stable even if cells reorder
};

struct CellResult {
  CellSpec spec;
  int64_t total_capacity = 0;
  double occupancy = 0.0;
  double sspa_seconds = 0.0;
  double cost_scaling_seconds = 0.0;
  double speedup = 0.0;  // sspa / cost_scaling (>1: cost scaling faster)
  double objective_rel_gap = 0.0;
  bool feasible_agree = false;
  MatcherBackendKind auto_backend = MatcherBackendKind::kSspa;
  bool auto_correct = false;
};

double MedianSeconds(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  const size_t n = samples.size();
  return n % 2 == 1 ? samples[n / 2]
                    : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
}

}  // namespace

int RunBackendCrossover(const Flags& flags,
                        const bench_util::BenchConfig& bench) {
  const int repeat = static_cast<int>(flags.GetInt("repeat", 5));
  // One shared city network: the cells vary the bipartite shape, not
  // the road topology, so backend differences are not confounded by
  // graph size.
  const Graph city = GenerateCity(AalborgPreset(bench.scale, bench.seed));
  std::printf("network: %d nodes\n", city.NumNodes());

  // The crossover preset. Dense/large-k cells run near saturation,
  // where every late customer rewires a long SSPA augmentation chain;
  // sparse cells keep occupancy low so SSPA's first candidates mostly
  // stick; the "crossover" cells straddle the measured boundary (occ
  // ~0.97, or batches just under the auto model's size floor) and
  // document where the engines tie.
  const CellSpec specs[] = {
      {"sparse_few_customers", "sparse", 96, 24, 8, 1},
      {"sparse_low_occupancy", "sparse", 160, 48, 8, 2},
      {"sparse_wide_catalog", "sparse", 192, 96, 6, 3},
      {"crossover_mid_occupancy", "crossover", 620, 40, 16, 4},
      {"crossover_small_batch", "crossover", 560, 35, 16, 5},
      {"dense_saturated", "dense", 640, 40, 16, 6},
      {"dense_near_saturated", "dense", 632, 40, 16, 7},
      {"dense_wide_catalog", "dense", 640, 80, 8, 8},
      {"dense_large_k", "dense", 1200, 60, 20, 9},
  };

  Table table({"cell", "m", "l", "occ", "sspa", "cost_scaling", "speedup",
               "auto", "auto_ok"});
  std::vector<CellResult> results;
  int disagreements = 0;
  for (const CellSpec& spec : specs) {
    Rng rng(bench.seed + static_cast<uint64_t>(spec.seed_offset));
    McfsInstance instance;
    instance.graph = &city;
    instance.customers = SampleDistinctNodes(city, spec.customers, rng);
    instance.facility_nodes =
        SampleDistinctNodes(city, spec.facilities, rng);
    instance.capacities = UniformCapacities(spec.facilities, spec.capacity);
    instance.k = spec.facilities;
    std::vector<int> selected(spec.facilities);
    std::iota(selected.begin(), selected.end(), 0);

    CellResult cell;
    cell.spec = spec;
    cell.total_capacity =
        static_cast<int64_t>(spec.facilities) * spec.capacity;
    cell.occupancy = static_cast<double>(spec.customers) /
                     static_cast<double>(cell.total_capacity);

    McfsSolution sspa_solution;
    McfsSolution cs_solution;
    std::vector<double> sspa_times, cs_times;
    for (int r = 0; r < repeat; ++r) {
      WallTimer timer;
      sspa_solution = AssignOptimally(instance, selected, /*threads=*/1,
                                      MatcherBackendKind::kSspa);
      sspa_times.push_back(timer.Seconds());
    }
    for (int r = 0; r < repeat; ++r) {
      WallTimer timer;
      cs_solution = AssignOptimally(instance, selected, /*threads=*/1,
                                    MatcherBackendKind::kCostScaling);
      cs_times.push_back(timer.Seconds());
    }
    cell.sspa_seconds = MedianSeconds(sspa_times);
    cell.cost_scaling_seconds = MedianSeconds(cs_times);
    cell.speedup = cell.cost_scaling_seconds > 0.0
                       ? cell.sspa_seconds / cell.cost_scaling_seconds
                       : 0.0;
    cell.objective_rel_gap =
        std::abs(sspa_solution.objective - cs_solution.objective) /
        (1.0 + std::abs(sspa_solution.objective));
    cell.feasible_agree = sspa_solution.feasible == cs_solution.feasible;
    if (cell.objective_rel_gap > 1e-9 || !cell.feasible_agree) {
      ++disagreements;
    }

    MatchShape shape;
    shape.customers = spec.customers;
    shape.facilities = spec.facilities;
    shape.total_capacity = cell.total_capacity;
    cell.auto_backend =
        ResolveMatcherBackend(MatcherBackendKind::kAuto, shape);
    const double picked = cell.auto_backend == MatcherBackendKind::kSspa
                              ? cell.sspa_seconds
                              : cell.cost_scaling_seconds;
    const double best =
        std::min(cell.sspa_seconds, cell.cost_scaling_seconds);
    // "Correct" allows a 10% tie band: on near-equal cells either
    // engine is a fine pick and timer noise should not flip the score.
    cell.auto_correct = picked <= best * 1.10;

    table.AddRow({spec.name, FmtInt(spec.customers), FmtInt(spec.facilities),
                  FmtDouble(cell.occupancy, 2),
                  FmtSeconds(cell.sspa_seconds),
                  FmtSeconds(cell.cost_scaling_seconds),
                  FmtDouble(cell.speedup, 2),
                  MatcherBackendName(cell.auto_backend),
                  cell.auto_correct ? "yes" : "NO"});
    results.push_back(cell);
  }
  table.Print();

  int auto_correct = 0;
  double dense_min_speedup = 0.0;
  double sparse_max_speedup = 0.0;
  int dense_cells = 0, sparse_cells = 0;
  for (const CellResult& cell : results) {
    if (cell.auto_correct) ++auto_correct;
    const std::string preset = cell.spec.preset;
    if (preset == "dense") {
      dense_min_speedup = dense_cells == 0
                              ? cell.speedup
                              : std::min(dense_min_speedup, cell.speedup);
      ++dense_cells;
    } else if (preset == "sparse") {
      sparse_max_speedup = std::max(sparse_max_speedup, cell.speedup);
      ++sparse_cells;
    }
    // "crossover" cells score the auto model only; neither preset
    // aggregate should be dragged by deliberately-tied shapes.
  }
  const double auto_fraction =
      results.empty() ? 0.0
                      : static_cast<double>(auto_correct) /
                            static_cast<double>(results.size());
  std::printf(
      "dense: min cost-scaling speedup %.2fx over %d cells; sparse: max "
      "%.2fx over %d cells; auto correct on %d/%zu (%.0f%%); "
      "%d objective disagreements\n",
      dense_min_speedup, dense_cells, sparse_max_speedup, sparse_cells,
      auto_correct, results.size(), 100.0 * auto_fraction, disagreements);

  const std::string out = flags.GetString(
      "backends-out",
      flags.GetString("backends_out", "BENCH_matcher_backends.json"));
  if (!out.empty()) {
    std::ostringstream json;
    json << "{\"config\": {\"scale\": " << obs::JsonNumber(bench.scale)
         << ", \"seed\": " << bench.seed << ", \"nodes\": " << city.NumNodes()
         << ", \"repeat\": " << repeat << ", \"threads\": 1}, \"cells\": [";
    for (size_t i = 0; i < results.size(); ++i) {
      const CellResult& cell = results[i];
      if (i > 0) json << ", ";
      json << "{\"name\": \"" << cell.spec.name << "\", \"preset\": \""
           << cell.spec.preset << "\", \"customers\": " << cell.spec.customers
           << ", \"facilities\": " << cell.spec.facilities
           << ", \"total_capacity\": " << cell.total_capacity
           << ", \"occupancy\": " << obs::JsonNumber(cell.occupancy)
           << ", \"sspa_seconds\": " << obs::JsonNumber(cell.sspa_seconds)
           << ", \"cost_scaling_seconds\": "
           << obs::JsonNumber(cell.cost_scaling_seconds)
           << ", \"speedup\": " << obs::JsonNumber(cell.speedup)
           << ", \"objective_rel_gap\": "
           << obs::JsonNumber(cell.objective_rel_gap)
           << ", \"feasible_agree\": "
           << (cell.feasible_agree ? "true" : "false")
           << ", \"auto_backend\": \""
           << MatcherBackendName(cell.auto_backend) << "\""
           << ", \"auto_correct\": "
           << (cell.auto_correct ? "true" : "false") << "}";
    }
    json << "], \"summary\": {\"cells\": " << results.size()
         << ", \"auto_correct\": " << auto_correct
         << ", \"auto_correct_fraction\": " << obs::JsonNumber(auto_fraction)
         << ", \"dense_cells\": " << dense_cells
         << ", \"dense_min_speedup\": " << obs::JsonNumber(dense_min_speedup)
         << ", \"sparse_cells\": " << sparse_cells
         << ", \"sparse_max_speedup\": "
         << obs::JsonNumber(sparse_max_speedup)
         << ", \"objective_disagreements\": " << disagreements << "}}";
    std::ofstream file(out);
    if (file.is_open()) {
      file << json.str() << "\n";
      if (file.good()) {
        std::printf("(backend crossover written to %s)\n", out.c_str());
      }
    }
  }
  bench_util::FlushArtifacts(flags);
  return disagreements == 0 ? 0 : 1;
}

}  // namespace mcfs

int main(int argc, char** argv) {
  using namespace mcfs;
  const Flags flags(argc, argv);
  const auto bench = bench_util::BenchConfig::FromFlags(flags, 0.05);
  bench_util::Banner("Matcher backends: SSPA vs cost-scaling crossover",
                     bench);
  return RunBackendCrossover(flags, bench);
}
