// Ablation: CheckCover tie-breaking strategy. The paper breaks ties
// between equal marginal gains by selecting the least recently chosen
// facility (diversification). Our implementation adds an optional
// cost-aware primary tie-break (prefer the facility whose matched
// customers are nearest); this bench quantifies its effect across the
// regimes where ties dominate (sparse customers, k a large fraction of
// m, F_p = V).

#include "bench/bench_util.h"
#include "mcfs/core/wma.h"
#include "mcfs/exact/bb_solver.h"
#include "mcfs/graph/generators.h"
#include "mcfs/workload/workload.h"

int main(int argc, char** argv) {
  using namespace mcfs;
  const Flags flags(argc, argv);
  const auto bench = bench_util::BenchConfig::FromFlags(flags, 1.0);
  bench_util::Banner("Ablation: CheckCover tie-break strategy", bench);

  Table table({"config", "seed", "recency-only", "cost-aware",
               "exact", "gap recency", "gap cost-aware"});
  struct Config {
    const char* name;
    double alpha;
    int clusters;
    int n, m, k, c;
  };
  const Config configs[] = {
      {"sparse uniform", 1.2, 0, 512, 51, 25, 10},
      {"dense uniform", 2.0, 0, 512, 102, 51, 4},
      {"clustered", 2.0, 20, 512, 51, 10, 20},
  };
  for (const Config& config : configs) {
    for (int trial = 0; trial < 3; ++trial) {
      const uint64_t seed = bench.seed + trial;
      SyntheticNetworkOptions graph_options;
      graph_options.num_nodes = config.n;
      graph_options.alpha = config.alpha;
      graph_options.num_clusters = config.clusters;
      graph_options.seed = seed + 512;
      const Graph graph = GenerateSyntheticNetwork(graph_options);
      Rng rng(seed + 513);
      McfsInstance instance;
      instance.graph = &graph;
      instance.customers = SampleDistinctNodes(graph, config.m, rng);
      instance.facility_nodes = SampleDistinctNodes(graph, config.n, rng);
      instance.capacities = UniformCapacities(config.n, config.c);
      instance.k = config.k;

      WmaOptions recency;
      recency.cost_tie_break = false;
      recency.matcher = bench.matcher;
      const double obj_recency = RunWma(instance, recency).solution.objective;
      WmaOptions cost_aware;  // default: cost tie-break on
      cost_aware.matcher = bench.matcher;
      const double obj_cost = RunWma(instance, cost_aware).solution.objective;
      ExactOptions exact_options;
      exact_options.time_limit_seconds = bench.exact_seconds;
      exact_options.matcher = bench.matcher;
      const ExactResult exact = SolveExact(instance, exact_options);
      const bool have_exact = !exact.failed && exact.solution.feasible;
      const double opt = exact.solution.objective;
      table.AddRow(
          {config.name, FmtInt(seed), FmtDouble(obj_recency, 1),
           FmtDouble(obj_cost, 1), have_exact ? FmtDouble(opt, 1) : "-",
           have_exact ? FmtDouble(obj_recency / opt, 2) + "x" : "-",
           have_exact ? FmtDouble(obj_cost / opt, 2) + "x" : "-"});
    }
  }
  table.Print();
  return 0;
}
