#ifndef MCFS_BENCH_BENCH_UTIL_H_
#define MCFS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "mcfs/bench/runner.h"
#include "mcfs/common/flags.h"
#include "mcfs/common/table.h"
#include "mcfs/core/instance.h"

namespace mcfs {
namespace bench_util {

// Every experiment binary accepts:
//   --scale=F   multiplies the instance sizes (default < 1 so the whole
//               suite finishes on a laptop; 1.0 reproduces paper scale)
//   --seed=N    RNG seed
//   --exact_seconds=S  budget for the exact reference solver
//   --threads=N run independent (instance, algorithm) suite cells and
//               the WMA stream prefetch on N threads (default 1: serial,
//               contention-free per-cell timings; 0 = MCFS_THREADS /
//               hardware default). Objectives are identical either way.
struct BenchConfig {
  double scale = 1.0;
  uint64_t seed = 42;
  double exact_seconds = 20.0;
  int threads = 1;

  static BenchConfig FromFlags(const Flags& flags, double default_scale) {
    BenchConfig config;
    config.scale = flags.GetDouble("scale", default_scale);
    config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    config.exact_seconds = flags.GetDouble("exact_seconds", 20.0);
    config.threads = static_cast<int>(flags.GetInt("threads", 1));
    return config;
  }
};

// Applies the shared per-binary knobs to a suite (seed, exact budget,
// thread count); the caller then toggles the algorithm set.
inline AlgorithmSuite MakeSuite(const BenchConfig& config) {
  AlgorithmSuite suite;
  suite.seed = config.seed;
  suite.exact_options.time_limit_seconds = config.exact_seconds;
  suite.threads = config.threads;
  return suite;
}

// Prints one experiment banner.
inline void Banner(const std::string& title, const BenchConfig& config) {
  std::printf("\n=== %s (scale=%.3g, seed=%llu) ===\n", title.c_str(),
              config.scale,
              static_cast<unsigned long long>(config.seed));
}

// Rebuilds an instance with shifted seeds until it is feasible (the
// paper's experiments assume feasible instances; clustered/sparse
// synthetic graphs occasionally fragment too much for the budget k).
// `build` maps a seed to an instance.
template <typename BuildFn>
McfsInstance BuildFeasibleInstance(BuildFn&& build, uint64_t base_seed,
                                   int max_attempts = 8) {
  McfsInstance instance = build(base_seed);
  for (int attempt = 1;
       attempt < max_attempts && !IsFeasible(instance); ++attempt) {
    instance = build(base_seed + 1000 * static_cast<uint64_t>(attempt));
  }
  return instance;
}

// Accumulates sweep results into a paper-style table: one row per
// (x, algorithm) with objective and runtime columns.
class SweepTable {
 public:
  SweepTable(std::string x_name)
      : x_name_(std::move(x_name)),
        table_({x_name_, "algorithm", "objective", "runtime", "status"}) {}

  void Add(const std::string& x, const std::vector<AlgoOutcome>& outcomes) {
    for (const AlgoOutcome& o : outcomes) {
      std::string status = "ok";
      if (o.failed) {
        status = "fail";
      } else if (!o.feasible) {
        status = "infeasible";
      }
      table_.AddRow({x, o.algorithm,
                     o.failed ? "-" : FmtDouble(o.objective, 1),
                     FmtSeconds(o.seconds), status});
    }
  }

  void PrintAndMaybeSave(const Flags& flags) {
    table_.Print();
    const std::string csv = flags.GetString("csv", "");
    if (!csv.empty() && table_.WriteCsv(csv)) {
      std::printf("(written to %s)\n", csv.c_str());
    }
  }

 private:
  std::string x_name_;
  Table table_;
};

}  // namespace bench_util
}  // namespace mcfs

#endif  // MCFS_BENCH_BENCH_UTIL_H_
