#ifndef MCFS_BENCH_BENCH_UTIL_H_
#define MCFS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "mcfs/bench/run_report.h"
#include "mcfs/bench/runner.h"
#include "mcfs/common/check.h"
#include "mcfs/common/flags.h"
#include "mcfs/common/table.h"
#include "mcfs/core/instance.h"
#include "mcfs/obs/metrics.h"
#include "mcfs/obs/trace.h"

namespace mcfs {
namespace bench_util {

// Every experiment binary accepts:
//   --scale=F   multiplies the instance sizes (default < 1 so the whole
//               suite finishes on a laptop; 1.0 reproduces paper scale)
//   --seed=N    RNG seed
//   --exact_seconds=S  budget for the exact reference solver
//   --threads=N run independent (instance, algorithm) suite cells and
//               the WMA stream prefetch on N threads (default 1: serial,
//               contention-free per-cell timings; 0 = MCFS_THREADS /
//               hardware default). Objectives are identical either way.
//   --metrics=BOOL  per-cell counter/distribution collection via the obs
//               registry (default true; --metrics=false for raw speed)
//   --report-out=PATH  structured JSON run report (default
//               run_report.json when metrics are on; "" disables)
//   --trace-out=PATH  Chrome trace_event JSON of the run's spans, load
//               it in Perfetto / chrome://tracing (default off; the
//               MCFS_TRACE env var does the same thing)
//   --deadline-ms=N  per-cell wall-clock budget: WMA variants degrade
//               anytime (best-so-far, status "deadline"), the exact
//               solver's budget is capped to it (default 0 = unlimited)
//   --verify=BOOL  re-check every cell's solution with the independent
//               verifier (fresh Dijkstras); verdicts go to the table
//               status, the run report, and the verify/* counters
//   --matcher=sspa|cost_scaling|auto  matching engine for every cell's
//               final/transport assignments (default sspa; auto picks
//               by instance shape). The MCFS_MATCHER env var supplies
//               the same choice when the flag is absent.
struct BenchConfig {
  double scale = 1.0;
  uint64_t seed = 42;
  double exact_seconds = 20.0;
  int threads = 1;
  bool metrics = true;
  int64_t deadline_ms = 0;
  bool verify = false;
  MatcherBackendKind matcher = MatcherBackendKind::kSspa;
  std::string report_out;
  std::string trace_out;

  static BenchConfig FromFlags(const Flags& flags, double default_scale) {
    BenchConfig config;
    config.scale = flags.GetDouble("scale", default_scale);
    config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    config.exact_seconds = flags.GetDouble("exact_seconds", 20.0);
    config.threads = static_cast<int>(flags.GetInt("threads", 1));
    config.metrics = flags.GetBool("metrics", true);
    // Both spellings are accepted, matching the repo's flag style.
    config.deadline_ms =
        flags.GetInt("deadline-ms", flags.GetInt("deadline_ms", 0));
    config.verify = flags.GetBool("verify", false);
    // Flag beats env beats the sspa default; a bad spelling on the
    // command line is a hard error (a silently ignored engine choice
    // would corrupt a crossover measurement).
    const std::string matcher_flag = flags.GetString("matcher", "");
    if (!matcher_flag.empty()) {
      const StatusOr<MatcherBackendKind> parsed =
          ParseMatcherBackend(matcher_flag);
      MCFS_CHECK(parsed.ok()) << "--matcher=" << matcher_flag << ": "
                              << parsed.status().ToString();
      config.matcher = parsed.value();
    } else {
      config.matcher = MatcherBackendFromEnv(MatcherBackendKind::kSspa);
    }
    config.report_out = flags.GetString(
        "report_out", config.metrics ? "run_report.json" : "");
    config.trace_out = flags.GetString("trace_out", "");
    if (config.metrics) obs::EnableMetrics(true);
    if (!config.trace_out.empty()) obs::EnableTracing(true);
    return config;
  }
};

namespace internal {
// One report per bench process, named in Banner(); leaked like the obs
// registries so artifact flushing never races static destruction.
inline RunReport*& ReportSlot() {
  static RunReport* report = nullptr;
  return report;
}
}  // namespace internal

// The process-wide run report every SweepTable feeds.
inline RunReport& Report() {
  RunReport*& slot = internal::ReportSlot();
  if (slot == nullptr) slot = new RunReport("bench");
  return *slot;
}

// Prints one experiment banner and names the process run report.
inline void Banner(const std::string& title, const BenchConfig& config) {
  std::printf("\n=== %s (scale=%.3g, seed=%llu, matcher=%s) ===\n",
              title.c_str(), config.scale,
              static_cast<unsigned long long>(config.seed),
              MatcherBackendName(config.matcher));
  RunReport*& slot = internal::ReportSlot();
  if (slot == nullptr) slot = new RunReport(title);
}

// Applies the shared per-binary knobs to a suite (seed, exact budget,
// thread count, metrics); the caller then toggles the algorithm set.
inline AlgorithmSuite MakeSuite(const BenchConfig& config) {
  AlgorithmSuite suite;
  suite.seed = config.seed;
  suite.exact_options.time_limit_seconds = config.exact_seconds;
  suite.threads = config.threads;
  suite.metrics = config.metrics;
  suite.cell_timeout_ms = config.deadline_ms;
  suite.verify = config.verify;
  suite.matcher = config.matcher;
  return suite;
}

// Rebuilds an instance with shifted seeds until it is feasible (the
// paper's experiments assume feasible instances; clustered/sparse
// synthetic graphs occasionally fragment too much for the budget k).
// `build` maps a seed to an instance.
template <typename BuildFn>
McfsInstance BuildFeasibleInstance(BuildFn&& build, uint64_t base_seed,
                                   int max_attempts = 8) {
  McfsInstance instance = build(base_seed);
  for (int attempt = 1;
       attempt < max_attempts && !IsFeasible(instance); ++attempt) {
    instance = build(base_seed + 1000 * static_cast<uint64_t>(attempt));
  }
  return instance;
}

// Writes the run-report / trace artifacts configured by the flags.
// Rewritten after every table so an interrupted sweep still leaves
// consistent files on disk; the last call holds the full run.
inline void FlushArtifacts(const Flags& flags) {
  const bool metrics = flags.GetBool("metrics", true);
  const std::string report_out =
      flags.GetString("report_out", metrics ? "run_report.json" : "");
  RunReport* report = internal::ReportSlot();
  if (!report_out.empty() && report != nullptr && report->NumCells() > 0) {
    if (report->WriteJson(report_out)) {
      std::printf("(run report written to %s)\n", report_out.c_str());
    }
  }
  const std::string trace_out = flags.GetString("trace_out", "");
  if (!trace_out.empty() && obs::WriteChromeTrace(trace_out)) {
    std::printf("(trace written to %s — load in Perfetto)\n",
                trace_out.c_str());
  }
}

// Accumulates sweep results into a paper-style table: one row per
// (x, algorithm) with objective, runtime, and phase-breakdown columns —
// and mirrors every outcome into the process run report. `section`
// distinguishes sweeps within one binary (e.g. "6a".."6d") in the
// report's instance labels.
class SweepTable {
 public:
  explicit SweepTable(std::string x_name, std::string section = "")
      : x_name_(std::move(x_name)),
        section_(std::move(section)),
        table_({x_name_, "algorithm", "objective", "runtime", "iters",
                "matching", "cover", "status"}) {}

  void Add(const std::string& x, const std::vector<AlgoOutcome>& outcomes) {
    for (const AlgoOutcome& o : outcomes) {
      std::string status = "ok";
      if (o.verify_ran && !o.verify_ok) {
        status = "VERIFY FAIL";
      } else if (o.failed) {
        status = "fail";
      } else if (!o.feasible) {
        status = "infeasible";
      } else if (o.termination == Termination::kDeadline) {
        status = "deadline";
      } else if (o.verify_ran) {
        status = "verified";
      }
      const bool wma = o.has_wma_stats;
      table_.AddRow({x, o.algorithm,
                     o.failed ? "-" : FmtDouble(o.objective, 1),
                     FmtSeconds(o.seconds),
                     wma ? FmtInt(o.wma_stats.iterations) : "-",
                     wma ? FmtSeconds(o.wma_stats.matching_seconds) : "-",
                     wma ? FmtSeconds(o.wma_stats.cover_seconds) : "-",
                     status});
    }
    std::string label = x_name_ + "=" + x;
    if (!section_.empty()) label = section_ + " " + label;
    Report().AddSuite(label, outcomes);
  }

  void PrintAndMaybeSave(const Flags& flags) {
    table_.Print();
    const std::string csv = flags.GetString("csv", "");
    if (!csv.empty() && table_.WriteCsv(csv)) {
      std::printf("(written to %s)\n", csv.c_str());
    }
    FlushArtifacts(flags);
  }

 private:
  std::string x_name_;
  std::string section_;
  Table table_;
};

}  // namespace bench_util
}  // namespace mcfs

#endif  // MCFS_BENCH_BENCH_UTIL_H_
