// Reproduces Figure 6 (a-d): uniform synthetic networks of growing size.
// For each configuration the paper plots objective and runtime for
// Hilbert, WMA, WMA Naive, Gurobi (our exact B&B) — plus BRNN in 6a,
// after which the paper drops it for being far worse.
//
// Expected shape (paper): BRNN clearly worst; Hilbert close to WMA on
// uniform data but diverging as size grows; WMA within a few percent of
// the exact optimum; the exact solver's runtime explodes and eventually
// fails while the heuristics scale gracefully.

#include <cmath>

#include "bench/bench_util.h"
#include "mcfs/graph/generators.h"
#include "mcfs/workload/workload.h"

namespace mcfs {
namespace {

using bench_util::BenchConfig;
using bench_util::SweepTable;

struct Fig6Config {
  const char* name;
  double alpha;
  double customer_fraction;  // m = fraction * n (distinct nodes)
  double k_fraction;         // k = fraction * m
  int capacity;              // uniform capacity; 0 = nonuniform U[1,10]
  bool with_brnn;
};

void RunConfig(const Fig6Config& config, const BenchConfig& bench,
               const Flags& flags) {
  std::printf("\n--- Fig 6%s: alpha=%.1f, m=%.2gn, k=%.2gm, %s ---\n",
              config.name, config.alpha, config.customer_fraction,
              config.k_fraction,
              config.capacity > 0 ? "uniform c" : "c ~ U[1,10]");
  SweepTable table("n", std::string("fig6") + config.name);
  for (int base : {512, 1024, 2048, 4096}) {
    const int n = std::max(64, static_cast<int>(base * bench.scale * 4));
    SyntheticNetworkOptions graph_options;
    graph_options.num_nodes = n;
    graph_options.alpha = config.alpha;
    graph_options.seed = bench.seed + base;
    const Graph graph = GenerateSyntheticNetwork(graph_options);

    const int m = std::max(4, static_cast<int>(n * config.customer_fraction));
    auto build = [&](uint64_t seed) {
      Rng rng(seed);
      McfsInstance instance;
      instance.graph = &graph;
      instance.customers = SampleDistinctNodes(graph, m, rng);
      instance.facility_nodes = SampleDistinctNodes(graph, n, rng);  // F_p = V
      instance.capacities = config.capacity > 0
                                ? UniformCapacities(n, config.capacity)
                                : RandomCapacities(n, 1, 10, rng);
      instance.k = std::max(1, static_cast<int>(m * config.k_fraction));
      return instance;
    };
    const McfsInstance instance =
        bench_util::BuildFeasibleInstance(build, bench.seed + base + 1);

    AlgorithmSuite suite = bench_util::MakeSuite(bench);
    suite.with_brnn = config.with_brnn;
    table.Add(FmtInt(n), RunSuite(instance, suite));
  }
  table.PrintAndMaybeSave(flags);
}

}  // namespace
}  // namespace mcfs

int main(int argc, char** argv) {
  using namespace mcfs;
  const Flags flags(argc, argv);
  const auto bench = bench_util::BenchConfig::FromFlags(flags, 0.125);
  bench_util::Banner("Figure 6: uniform synthetic data, variable size",
                     bench);
  // (a) sparse customers, generous capacity (o = 0.5), BRNN included.
  RunConfig({"a", 2.0, 0.10, 0.10, 20, true}, bench, flags);
  // (b) denser customers and facilities, c = 4, o = 0.5.
  RunConfig({"b", 2.0, 0.20, 0.50, 4, false}, bench, flags);
  // (c) sparser, less connected network (alpha = 1.2), c = 10, o = 0.2.
  RunConfig({"c", 1.2, 0.10, 0.50, 10, false}, bench, flags);
  // (d) as (c) with nonuniform capacities U[1, 10].
  RunConfig({"d", 1.2, 0.10, 0.50, 0, false}, bench, flags);
  return 0;
}
