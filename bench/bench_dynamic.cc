// Extension bench: dynamic customer reallocation — the workload the
// paper's introduction motivates ("the problem may need to be solved
// repeatedly... depending on which customers declare interest").
// Simulates a stream of customer arrivals/departures on a city network
// and compares:
//   * full      — a fresh WMA selection at every event;
//   * dynamic   — DynamicMcfs: keep the selection while it stays within
//                 a cost ratio of the last full solve, otherwise
//                 re-select (the warm-start policy);
// reporting total time, re-selection count, and the average objective
// ratio versus the always-fresh reference.

#include <algorithm>

#include "bench/bench_util.h"
#include "mcfs/common/timer.h"
#include "mcfs/core/dynamic.h"
#include "mcfs/graph/road_network.h"
#include "mcfs/workload/workload.h"

int main(int argc, char** argv) {
  using namespace mcfs;
  const Flags flags(argc, argv);
  const auto bench = bench_util::BenchConfig::FromFlags(flags, 0.04);
  bench_util::Banner("Extension: dynamic customer reallocation", bench);

  const Graph city = GenerateCity(AalborgPreset(bench.scale, bench.seed));
  Rng rng(bench.seed + 1);
  const int l = std::min(city.NumNodes() / 8, 300);
  const std::vector<NodeId> facilities = SampleDistinctNodes(city, l, rng);
  const std::vector<int> capacities = UniformCapacities(l, 10);
  const int k = l / 4;
  const int events = static_cast<int>(flags.GetInt("events", 60));
  std::printf("city n=%d, l=%d candidates, k=%d, %d events\n",
              city.NumNodes(), l, k, events);

  // Pre-generate the event stream so both strategies see the same one.
  struct Event {
    bool arrival;
    NodeId node;
  };
  std::vector<Event> stream;
  for (int e = 0; e < events; ++e) {
    const bool arrival = e < 20 || rng.NextDouble() < 0.65;
    stream.push_back(
        {arrival, static_cast<NodeId>(rng.UniformInt(0, city.NumNodes() - 1))});
  }

  // --- dynamic strategy ---
  DynamicOptions dynamic_options;
  dynamic_options.wma.matcher = bench.matcher;
  DynamicMcfs dynamic(&city, facilities, capacities, k, dynamic_options);
  std::vector<int> ids;
  Rng removal(bench.seed + 2);
  std::vector<double> dynamic_objectives;
  WallTimer timer;
  for (const Event& event : stream) {
    if (event.arrival || ids.empty()) {
      ids.push_back(dynamic.AddCustomer(event.node));
    } else {
      const size_t pick = removal.UniformInt(0, ids.size() - 1);
      dynamic.RemoveCustomer(ids[pick]);
      ids.erase(ids.begin() + pick);
    }
    dynamic_objectives.push_back(dynamic.Resolve().objective);
  }
  const double dynamic_seconds = timer.Seconds();

  // --- always-fresh reference ---
  std::vector<NodeId> active;
  Rng removal2(bench.seed + 2);
  std::vector<double> full_objectives;
  timer.Restart();
  for (const Event& event : stream) {
    if (event.arrival || active.empty()) {
      active.push_back(event.node);
    } else {
      const size_t pick = removal2.UniformInt(0, active.size() - 1);
      active.erase(active.begin() + pick);
    }
    McfsInstance instance;
    instance.graph = &city;
    instance.customers = active;
    instance.facility_nodes = facilities;
    instance.capacities = capacities;
    instance.k = k;
    full_objectives.push_back(RunWma(instance).solution.objective);
  }
  const double full_seconds = timer.Seconds();

  double ratio_sum = 0.0;
  int ratio_count = 0;
  for (size_t e = 0; e < full_objectives.size(); ++e) {
    if (full_objectives[e] > 0.0) {
      ratio_sum += dynamic_objectives[e] / full_objectives[e];
      ++ratio_count;
    }
  }

  Table table({"strategy", "total time", "full solves",
               "incremental solves", "avg objective vs fresh"});
  table.AddRow({"fresh WMA each event", FmtSeconds(full_seconds),
                FmtInt(events), "0", "1.00x"});
  table.AddRow({"DynamicMcfs (warm)", FmtSeconds(dynamic_seconds),
                FmtInt(dynamic.full_solves()),
                FmtInt(dynamic.incremental_solves()),
                FmtDouble(ratio_count ? ratio_sum / ratio_count : 0.0, 3) +
                    "x"});
  table.Print();
  std::printf("speedup: %.1fx with %.1f%% average objective overhead\n",
              full_seconds / std::max(dynamic_seconds, 1e-9),
              100.0 * ((ratio_count ? ratio_sum / ratio_count : 1.0) - 1.0));
  return 0;
}
